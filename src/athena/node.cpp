#include "athena/node.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/log.h"

namespace dde::athena {
namespace {

/// Dedup key for (origin, source) prefetch actions: once a source's object
/// was pushed toward an origin, further queries from the same origin are
/// served by the caches that push populated.
std::uint64_t prefetch_key(NodeId origin, SourceId s) noexcept {
  return origin.value() * 1000003ULL + s.value();
}

/// Keys of an unordered map/set in ascending order. Iterating hash tables
/// directly would make trace emission and event scheduling depend on the
/// standard library's bucket layout; every order-sensitive walk in this file
/// goes through a sorted key vector instead.
template <typename Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {  // lint: ordered-fold — keys sorted below
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void AthenaNode::trace(obs::EventKind kind, QueryId query,
                       std::uint64_t subject, std::uint64_t bytes,
                       double value) {
  if (trace_sink_ == nullptr) return;
  trace_sink_->emit(obs::Event{kind, net_.now(), id_.value(), query.value(),
                               subject, bytes, value});
}

AthenaNode::AthenaNode(NodeId id, net::Network& net, const Directory& directory,
                       world::SensorField& field, const AthenaConfig& config,
                       AthenaMetrics& metrics)
    : id_(id),
      net_(net),
      directory_(directory),
      field_(field),
      config_(config),
      metrics_(metrics),
      object_cache_(config.object_cache_capacity),
      label_cache_(config.label_cache_capacity) {
  net_.set_handler(id_, [this](NodeId, const net::Packet& pkt) {
    on_packet(pkt);
  });
}

// ---------------------------------------------------------------------------
// Query origination (Query_Init)
// ---------------------------------------------------------------------------

QueryId AthenaNode::query_init(decision::DnfExpr expr,
                               SimTime relative_deadline, int priority) {
  drain_retired();
  const SimTime now = net_.now();
  // Globally unique query ids: node id in the high digits.
  const QueryId qid{id_.value() * 1000000ULL + next_query_++};

  // Admission control (overload protection): when this node is already
  // carrying admission_max_active unresolved queries, a new low-priority
  // query is rejected outright — no announce, no requests, no deadline
  // watchdog — and recorded as shed so the load it would have offered is
  // visible in the metrics. Critical queries are always admitted.
  if (config_.admission_max_active > 0 && priority <= 0 &&
      active_queries() >= config_.admission_max_active) {
    records_.push_back(
        QueryRecord{qid, priority, false, now, now, std::nullopt, 0, true});
    ++metrics_.queries_issued;
    ++metrics_.queries_rejected;
    trace(obs::EventKind::kQueryIssue, qid, 0, 0,
          (now + relative_deadline).to_seconds());
    trace(obs::EventKind::kQueryReject, qid);
    return qid;
  }

  QueryState q;
  q.id = qid;
  q.expr = std::move(expr);
  q.issued_at = now;
  q.deadline_abs = now + relative_deadline;
  const auto labels = q.expr.all_labels();
  for (const LabelId l : labels) q.label_set.insert(l);
  q.selection = directory_.select_sources(labels, id_, config_.source_selection);
  q.priority = priority;
  q.record_index = records_.size();

  records_.push_back(QueryRecord{qid, priority, false, now, SimTime::max(),
                                 std::nullopt, 0, false});
  ++metrics_.queries_issued;
  trace(obs::EventKind::kQueryIssue, qid, labels.size(), 0,
        q.deadline_abs.to_seconds());

  // Announce the query's footprint to neighbors so they can prefetch
  // (Query_Recv step iv).
  announces_seen_.insert_if_absent(qid.value(), q.deadline_abs);
  schedule_gc();
  if (config_.prefetch && config_.announce_ttl > 0) {
    QueryAnnounce a{qid, id_, q.deadline_abs, labels, config_.announce_ttl - 1};
    for (NodeId nb : net_.topology().neighbors(id_)) {
      send_msg(nb, config_.announce_bytes, a, MsgKind::kAnnounce, priority);
    }
  }

  // Deadline watchdog.
  net_.simulator().schedule_at(q.deadline_abs, [this, qid] {
    drain_retired();
    QueryState* state = lookup_query(qid);
    if (state != nullptr && !state->finished) {
      finish(*state, /*success=*/false);
    }
  });

  const std::uint32_t slot = query_pool_.create(std::move(q));
  auto [it, inserted] = queries_.emplace(qid, slot);
  DDE_CHECK(inserted, "issue_query: duplicate QueryId would corrupt the "
                      "query table");
  advance(query_pool_.at(slot));
  return qid;
}

AthenaNode::QueryState* AthenaNode::lookup_query(QueryId qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second == kRetiredSlot) return nullptr;
  return &query_pool_.at(it->second);
}

void AthenaNode::drain_retired() {
  for (const QueryId qid : retire_pending_) {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second == kRetiredSlot) continue;
    query_pool_.destroy(it->second);
    it->second = kRetiredSlot;
  }
  retire_pending_.clear();
}

bool AthenaNode::prefetch_mark_seen(std::uint64_t key) {
  if (prefetch_seen_.contains(key)) return false;
  const std::size_t cap = std::max<std::size_t>(config_.prefetch_dedup_capacity, 1);
  while (prefetch_seen_.size() >= cap && !prefetch_seen_fifo_.empty()) {
    prefetch_seen_.erase(prefetch_seen_fifo_.front());
    prefetch_seen_fifo_.pop_front();
  }
  prefetch_seen_.insert(key);
  prefetch_seen_fifo_.push_back(key);
  return true;
}

// ---------------------------------------------------------------------------
// The origin-side query engine
// ---------------------------------------------------------------------------

decision::MetaFn AthenaNode::make_meta(const QueryState& q) const {
  return [this, &q](LabelId label) {
    SourceId source;
    if (auto it = q.selection.designated.find(label);
        it != q.selection.designated.end()) {
      source = it->second;
    } else if (const auto& srcs = directory_.sources_for(label); !srcs.empty()) {
      source = srcs.front();
    }
    if (!source.valid()) return decision::LabelMeta{};
    return directory_.meta(label, source, id_);
  };
}

std::vector<decision::LabelValue> AthenaNode::annotate(
    const world::EvidenceObject& obj) const {
  std::vector<decision::LabelValue> values;
  values.reserve(obj.readings.size());
  // Sorted segment order: the values vector feeds label-share payloads and
  // per-query settle traces, so its order must not depend on hash layout.
  for (const auto segment : sorted_keys(obj.readings)) {
    const bool viable = obj.readings.at(segment);
    decision::LabelValue v;
    v.label = LabelId{segment.value()};
    v.value = to_tristate(viable);
    v.evaluated_at = obj.captured_at;
    v.validity = obj.validity;
    v.annotator = AnnotatorId{id_.value()};
    v.evidence = {obj.id};
    values.push_back(std::move(v));
  }
  return values;
}

std::vector<decision::LabelValue> AthenaNode::corroborate(
    const world::EvidenceObject& obj) {
  const SimTime now = net_.now();
  std::vector<decision::LabelValue> decided;
  if (!obj.fresh_at(now)) return decided;  // expired observations are void
  // Sorted segment order: decided labels flow into shares and settle traces.
  for (const auto segment : sorted_keys(obj.readings)) {
    const bool reading = obj.readings.at(segment);
    const LabelId label{segment.value()};
    auto& entry = beliefs_[label];
    if (now >= entry.window_expires) entry = BeliefEntry{};  // window over
    if (!entry.observed.insert(obj.id).second) continue;  // already counted
    // Clamp into the informative range; a reliability at or below 0.5
    // carries no information.
    const double r = std::clamp(obj.reliability, 0.5, 0.999);
    entry.belief.observe(reading, r);
    entry.window_expires = std::min(entry.window_expires, obj.expires_at());
    const Tristate verdict =
        entry.belief.decided(config_.corroboration_confidence);
    if (verdict == Tristate::kUnknown) continue;
    decision::LabelValue v;
    v.label = label;
    v.value = verdict;
    v.evaluated_at = now;
    v.validity = entry.window_expires - now;
    v.annotator = AnnotatorId{id_.value()};
    v.evidence = sorted_keys(entry.observed);
    decided.push_back(std::move(v));
  }
  return decided;
}

SourceId AthenaNode::next_corroborating_source(const QueryState& q,
                                               LabelId label,
                                               SimTime* earliest_retry) const {
  const SimTime now = net_.now();
  SourceId best;
  SimTime best_last = SimTime::max();
  double best_cost = 0.0;
  for (SourceId s : directory_.sources_for(label)) {
    if (q.exhausted.contains(s)) continue;  // failed over away from it
    SimTime last = SimTime::zero() - SimTime::seconds(1e9);
    if (const SimTime* t = q.last_request.find(s)) last = *t;
    // A repeat request within the sensor's validity window would return
    // the same capture — no new information.
    const SimTime eligible_at = last + directory_.sensor(s).validity;
    if (eligible_at > now) {
      if (earliest_retry) *earliest_retry = std::min(*earliest_retry, eligible_at);
      continue;
    }
    const double cost = directory_.retrieval_cost(s, id_);
    if (!best.valid() || last < best_last ||
        (last == best_last && cost < best_cost)) {
      best = s;
      best_last = last;
      best_cost = cost;
    }
  }
  return best;
}

void AthenaNode::apply_labels_to_queries(
    const std::vector<decision::LabelValue>& values) {
  // Sorted query order: each fill emits a kLabelSettle trace event.
  for (const QueryId qid : sorted_keys(queries_)) {
    QueryState* state = lookup_query(qid);
    if (state == nullptr || state->finished) continue;
    QueryState& q = *state;
    for (const auto& v : values) {
      if (!q.label_set.contains(v.label)) continue;
      if (!trusts(v.annotator)) continue;
      // Never replace fresher knowledge with an older evaluation.
      const auto* cur = q.assignment.record(v.label);
      if (cur && cur->expires_at() >= v.expires_at()) continue;
      q.assignment.set(v);
      trace(obs::EventKind::kLabelSettle, qid, v.label.value(), 0,
            v.evaluated_at.to_seconds());
    }
  }
}

void AthenaNode::deliver_object(const world::EvidenceObject& obj) {
  const SimTime now = net_.now();
  // Bound the dedup set on very long runs; losing old entries only risks
  // re-annotating an already-expired capture, never incorrectness.
  if (ingested_.size() > 200000) ingested_.clear();
  const bool first_ingest = ingested_.insert(obj.id).second;
  if (first_ingest && !obj.fresh_at(now)) ++metrics_.stale_arrivals;

  if (first_ingest) {
    // Annotate (the origin is the evaluator, Sec. VI-C). With noisy
    // sensors, readings feed per-label Bayesian beliefs and only decided
    // labels emerge (Sec. IV-B); otherwise a single reading decides. Stale
    // values are dropped; fresh ones update assignments, and those that
    // improve on the label cache are cached and shared.
    std::vector<decision::LabelValue> values =
        config_.corroboration_confidence > 0.5 ? corroborate(obj)
                                               : annotate(obj);
    std::erase_if(values, [now](const decision::LabelValue& v) {
      return v.expires_at() <= now;
    });
    std::vector<decision::LabelValue> fresher;
    for (const auto& v : values) {
      const auto* existing = label_cache_.peek(v.label, now);
      if (existing && existing->expires_at() >= v.expires_at()) continue;
      label_cache_.put(v.label, v, v.expires_at(), now);
      fresher.push_back(v);
    }
    apply_labels_to_queries(values);

    // Share newly evaluated labels back into the network (Sec. VI-D).
    if (config_.label_sharing && !fresher.empty()) {
      share_labels(fresher, obj.source);
    }
  }

  // The reply (fresh or stale, new or repeated) settles the outstanding
  // request.
  // lint: ordered-fold — order-pinned site (docs/STATIC_ANALYSIS.md): hash
  // order is fixed for a given stdlib + seed-deterministic insertion history,
  // and reordering the advance() calls below changes replay trajectories
  // against the bench baseline.
  for (auto& [qid, slot] : queries_) {
    if (slot == kRetiredSlot) continue;
    QueryState& q = query_pool_.at(slot);
    if (q.outstanding.erase(obj.source)) {
      trace(obs::EventKind::kObjectRx, qid, obj.source.value(), obj.bytes);
    }
  }

  // Progress every query that may have been unblocked.
  std::vector<QueryId> ids;
  ids.reserve(queries_.size());
  // lint: ordered-fold — order-pinned site, see above.
  for (auto& [qid, slot] : queries_) {
    if (slot != kRetiredSlot && !query_pool_.at(slot).finished) {
      ids.push_back(qid);
    }
  }
  for (QueryId qid : ids) {
    QueryState* state = lookup_query(qid);
    if (state != nullptr) advance(*state);
  }
}

bool AthenaNode::try_local(QueryState& q, LabelId label) {
  const SimTime now = net_.now();

  // 1. Label cache: a fresh value signed by a trusted annotator settles
  //    the label outright (Sec. VI-D trust model).
  if (const auto* v = label_cache_.peek(label, now)) {
    if (trusts(v->annotator)) {
      q.assignment.set(*v);
      trace(obs::EventKind::kLabelSettle, q.id, v->label.value(), 0,
            v->evaluated_at.to_seconds());
      return true;
    }
  }

  // 2. Object cache (or a locally hosted sensor): a fresh object covering
  //    this label can be annotated on the spot. Already-ingested captures
  //    carry no new information and are skipped. Under corroboration one
  //    object may not decide the label, so every local source is consulted.
  for (SourceId s : directory_.sources_for(label)) {
    const bool cached = object_cache_.peek(s, now) != nullptr;
    if (!cached && !hosts(s)) continue;
    auto obj = local_object(s);
    if (!obj) continue;
    if (ingested_.contains(obj->id)) continue;
    if (cached) ++metrics_.object_cache_hits;
    deliver_object(*obj);
    // deliver_object() applied the annotation to q's assignment.
    if (q.assignment.value_at(label, now) != Tristate::kUnknown) return true;
  }
  return false;
}

void AthenaNode::advance(QueryState& q) {
  if (q.finished) return;
  const SimTime now = net_.now();
  if (now > q.deadline_abs) {
    finish(q, false);
    return;
  }
  // Keep resolving from local knowledge until we must touch the network.
  for (int guard = 0; guard < 1000; ++guard) {
    if (q.expr.resolved(q.assignment, now)) {
      finish(q, true);
      return;
    }
    const auto meta = make_meta(q);
    const auto order = decision::plan_retrieval_order(
        q.expr, q.assignment, now, meta, config_.order, q.deadline_abs);
    if (order.empty()) return;  // nothing actionable (uncovered labels)
    trace(obs::EventKind::kPlan, q.id, order.size());

    // Deadline-infeasibility shedding (overload protection): if nothing is
    // in flight and even the quickest possible retrieval can no longer
    // return in time, abort now — freeing the bandwidth the doomed fetches
    // would have burned — and account the query as shed, not failed.
    if (config_.shed_infeasible && q.outstanding.empty() &&
        deadline_infeasible(q, order, now)) {
      finish(q, /*success=*/false, /*shed=*/true);
      return;
    }

    bool progressed = false;
    if (config_.sequential) {
      if (!q.outstanding.empty()) return;  // one request in flight per query
      SimTime corroboration_retry = SimTime::max();
      for (LabelId l : order) {
        if (try_local(q, l)) {
          progressed = true;
          break;
        }
        SourceId source;
        if (config_.corroboration_confidence > 0.5) {
          // Rotate across covering sources to gather fresh corroborating
          // observations; skip the label if none has a new capture yet.
          source = next_corroborating_source(q, l, &corroboration_retry);
        } else if (const auto it = q.selection.designated.find(l);
                   it != q.selection.designated.end()) {
          source = it->second;
        }
        if (!source.valid()) continue;  // uncovered (or nothing new yet)
        if (hosts(source)) {
          // A locally hosted source not caught by try_local (possible under
          // corroboration when its fresh capture was already counted);
          // requesting it over the network is meaningless — but a NEW
          // capture becomes available once the current one expires, so
          // schedule the retry for then.
          if (const auto* cached = object_cache_.peek(source, net_.now())) {
            corroboration_retry =
                std::min(corroboration_retry, cached->expires_at());
          }
          continue;
        }
        // Request the chosen source; ask it for every still-relevant label
        // it covers (one object can settle several predicates).
        std::vector<LabelId> want;
        for (LabelId cov : directory_.labels_of(source)) {
          if (std::find(order.begin(), order.end(), cov) != order.end()) {
            want.push_back(cov);
          }
        }
        issue_request(q, source, std::move(want));
        return;
      }
      if (!progressed) {
        // Corroboration may be blocked until some sensor produces a fresh
        // capture; wake up then instead of sleeping to the deadline.
        if (corroboration_retry != SimTime::max() &&
            corroboration_retry < q.deadline_abs) {
          const QueryId qid = q.id;
          net_.simulator().schedule_at(
              corroboration_retry + SimTime::millis(1), [this, qid] {
                drain_retired();
                QueryState* state = lookup_query(qid);
                if (state != nullptr && !state->finished) {
                  advance(*state);
                }
              });
        }
        return;
      }
    } else {
      // Batch (cmp / slt): request every selected source that still has a
      // relevant label, all at once.
      for (LabelId l : order) {
        if (try_local(q, l)) progressed = true;
      }
      if (q.expr.resolved(q.assignment, now)) continue;  // loop re-checks
      const auto fresh_order = decision::plan_retrieval_order(
          q.expr, q.assignment, now, meta, config_.order, q.deadline_abs);
      for (const auto& [source, labels] : q.selection.requests) {
        if (q.outstanding.contains(source)) continue;
        // Locally hosted evidence was already consumed by try_local; a
        // network request to ourselves would be meaningless (reachable
        // only in exotic configs, e.g. batch issue + corroboration).
        if (hosts(source)) continue;
        std::vector<LabelId> want;
        for (LabelId l : labels) {
          if (std::find(fresh_order.begin(), fresh_order.end(), l) !=
              fresh_order.end()) {
            want.push_back(l);
          }
        }
        if (want.empty()) continue;
        issue_request(q, source, std::move(want));
        progressed = true;
      }
      if (!progressed) return;
      // Batch requests are all issued; nothing further until replies.
      return;
    }
  }
}

void AthenaNode::issue_request(QueryState& q, SourceId source,
                               std::vector<LabelId> labels) {
  const SimTime now = net_.now();
  // Locally hosted sources are handled by try_local; requesting one over
  // the network would deadlock the query on its own node.
  DDE_CHECK(!hosts(source),
            "issue_request: source is hosted locally (try_local must "
            "handle it)");

  auto& count = q.request_counts.ref(source);
  ++count;
  q.last_request.set(source, now);
  ++metrics_.object_requests;
  if (count > 1) ++metrics_.refetches;
  ++records_[q.record_index].requests_sent;
  trace(obs::EventKind::kFetch, q.id, source.value(), config_.request_bytes,
        static_cast<double>(count));

  // Adaptive timeout: three times the directory's round-trip estimate for
  // this source, floored generously (queueing is not in the estimate) and
  // capped by the configured maximum. Small objects on short paths recover
  // from loss in seconds instead of waiting out the worst-case timeout.
  const SimTime est = directory_.retrieval_latency(source, id_);
  SimTime timeout = config_.request_timeout;
  if (est != SimTime::max()) {
    timeout = std::clamp(3 * est, SimTime::seconds(8),
                         config_.request_timeout);
  }
  // Exponential backoff across attempts to the same source (fault
  // recovery): a source behind a downed link is probed at a geometrically
  // decaying rate instead of a fixed-period hammer, still capped by the
  // configured maximum.
  if (config_.retry_backoff > 1.0 && count > 1) {
    const double factor =
        std::pow(config_.retry_backoff, static_cast<double>(count - 1));
    timeout = std::min(SimTime::seconds(timeout.to_seconds() * factor),
                       config_.request_timeout);
  }
  q.outstanding.set(source, now + timeout);

  // Re-issue watchdog: if no reply settles this request in time, clear it
  // so the planner can retry — backed off against the same source, or
  // failed over to an alternate one once this source's attempts are spent.
  net_.simulator().schedule_after(
      timeout + SimTime::micros(1), [this, qid = q.id, source] {
        drain_retired();
        QueryState* state = lookup_query(qid);
        if (state == nullptr || state->finished) return;
        QueryState& q2 = *state;
        const SimTime* o = q2.outstanding.find(source);
        if (o != nullptr && *o <= net_.now()) {
          q2.outstanding.erase(source);
          ++metrics_.retries;
          trace(obs::EventKind::kRetry, qid, source.value());
          if (config_.max_source_attempts > 0 &&
              q2.request_counts.ref(source) >= config_.max_source_attempts &&
              q2.exhausted.insert(source).second) {
            failover(q2);
          }
          advance(q2);
        }
      });

  ObjectRequest r;
  r.query = q.id;
  r.origin = id_;
  r.source = source;
  r.labels = std::move(labels);
  r.prefetch = false;
  // Accept cached labels on the first attempt only: a retry means the label
  // answer was unusable (e.g. expired in transit), so insist on the object.
  r.accept_labels = config_.label_sharing && count == 1;
  r.deadline_abs = q.deadline_abs;
  r.priority = q.priority;

  // Local interest entry so the returning object is delivered to us.
  interest_order_.insert(source);
  interest_table_.find_or_insert(source.value())
      .push_back(Interest{NodeId{}, q.id, id_, r.labels, false,
                          r.accept_labels, q.priority,
                          now + config_.interest_ttl});
  schedule_gc();

  // Multipath redundancy (Sec. V-C): critical requests are replicated over
  // alternate downhill first hops, tagged with a replica group so the
  // copies deduplicate downstream. Non-critical traffic stays single-path.
  if (config_.multipath_redundancy > 1 && r.priority > 0) {
    r.replica_group = new_replica_group();
    const NodeId dest = directory_.host(r.source);
    const auto next = net_.next_hop(id_, dest);
    forward_request(r);
    if (next && *next != id_) replicate_request(r, *next, dest);
    return;
  }
  forward_request(r);
}

bool AthenaNode::deadline_infeasible(const QueryState& q,
                                     const std::vector<LabelId>& order,
                                     SimTime now) const {
  // The query needs at least one more retrieval to make progress. The
  // directory's latency estimate excludes queueing, so it lower-bounds the
  // real retrieval time: if even the cheapest estimate over every
  // still-needed label and covering source misses the deadline, no
  // retrieval issued now can help.
  SimTime cheapest = SimTime::max();
  for (LabelId l : order) {
    for (SourceId s : directory_.sources_for(l)) {
      if (hosts(s)) return false;  // local evidence is always in time
      const SimTime est = directory_.retrieval_latency(s, id_);
      if (est < cheapest) cheapest = est;
    }
  }
  return cheapest != SimTime::max() && now + cheapest > q.deadline_abs;
}

void AthenaNode::failover(QueryState& q) {
  // Deterministic label order (label_set is unordered).
  std::vector<LabelId> labels(q.label_set.begin(), q.label_set.end());
  std::sort(labels.begin(), labels.end());
  Directory::Selection fresh = directory_.select_sources(
      labels, id_, config_.source_selection, &q.exhausted);
  std::uint64_t moved = 0;
  // lint: ordered-fold — pure count of changed designations, commutative.
  for (const auto& [label, source] : fresh.designated) {
    const auto prev = q.selection.designated.find(label);
    if (prev == q.selection.designated.end() || prev->second != source) {
      ++metrics_.failovers;
      ++moved;
    }
  }
  q.selection = std::move(fresh);
  trace(obs::EventKind::kFailover, q.id, moved);
}

void AthenaNode::finish(QueryState& q, bool success, bool shed,
                        bool crashed) {
  if (q.finished) return;
  q.finished = true;
  ++finished_count_;
  const SimTime now = net_.now();

  QueryRecord& rec = records_[q.record_index];
  rec.success = success;
  rec.finished_at = now;
  if (success) {
    rec.chosen_action = q.expr.chosen_action(q.assignment, now);
    ++metrics_.queries_resolved;
    metrics_.total_resolution_latency_s += (now - q.issued_at).to_seconds();
    trace(obs::EventKind::kDecide, q.id,
          rec.chosen_action ? *rec.chosen_action : 0, 0,
          (now - q.issued_at).to_seconds());
  } else if (crashed) {
    // Terminal failed_crash: the query died with its node. Kept out of
    // queries_failed so deadline-miss rates stay attributable to the
    // protocol, not the fault schedule.
    rec.crashed = true;
    ++metrics_.queries_failed_crash;
    trace(obs::EventKind::kCrashDrop, q.id);
  } else if (shed) {
    rec.shed = true;
    ++metrics_.queries_shed;
    trace(obs::EventKind::kShed, q.id);
  } else {
    ++metrics_.queries_failed;
    trace(obs::EventKind::kExpire, q.id);
  }
  q.outstanding.clear();
  // The pooled state is recycled at the next drain_retired() entry point —
  // never here, because callers up the stack (deliver_object/advance
  // recursion) may still hold a reference to q.
  retire_pending_.push_back(q.id);
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void AthenaNode::on_packet(const net::Packet& pkt) {
  drain_retired();
  if (const auto* a = std::any_cast<QueryAnnounce>(&pkt.payload)) {
    handle_announce(pkt.src, *a);
  } else if (const auto* r = std::any_cast<ObjectRequest>(&pkt.payload)) {
    handle_request(pkt.src, *r);
  } else if (const auto* d = std::any_cast<ObjectReply>(&pkt.payload)) {
    handle_reply(pkt.src, *d);
  } else if (const auto* s = std::any_cast<LabelShare>(&pkt.payload)) {
    handle_label_share(pkt.src, *s);
  } else if (const auto* l = std::any_cast<LabelReply>(&pkt.payload)) {
    handle_label_reply(pkt.src, *l);
  } else if (const auto* inv = std::any_cast<Invalidation>(&pkt.payload)) {
    handle_invalidation(pkt.src, *inv);
  } else if (const auto* h = std::any_cast<RecoveryHello>(&pkt.payload)) {
    handle_recovery_hello(*h);
  }
}

void AthenaNode::handle_announce(NodeId from, const QueryAnnounce& a) {
  // Dedup entries expire with the query deadline (post-deadline duplicates
  // are discarded just below either way) and are swept by the GC.
  if (!announces_seen_.insert_if_absent(a.query.value(), a.deadline_abs)) {
    return;
  }
  schedule_gc();
  const SimTime now = net_.now();
  if (now >= a.deadline_abs) return;

  // Re-flood within the TTL radius.
  if (a.ttl > 0) {
    QueryAnnounce next = a;
    next.ttl = a.ttl - 1;
    for (NodeId nb : net_.topology().neighbors(id_)) {
      if (nb != from) send_msg(nb, config_.announce_bytes, next, MsgKind::kAnnounce);
    }
  }

  if (!config_.prefetch || a.origin == id_) return;

  // Enqueue background prefetch work (Query_Recv / Sec. VI-A): a node that
  // hosts a sensor relevant to the announced decision pushes its object
  // toward the origin (Fig. 1: node C pushes u), so the data is already
  // cached en route when the fetch request comes. Restricted to hosted
  // sensors — blanket cache pushes flood the network with redundant copies.
  // The push-dedup set is bounded (config_.prefetch_dedup_capacity) by
  // oldest-first eviction inside prefetch_mark_seen: losing the stalest
  // entries only risks one redundant background push per (origin, source)
  // pair, never incorrectness — and, unlike the wholesale clear() this
  // replaces, an overflow no longer forgets every in-flight key at once.
  for (LabelId label : a.labels) {
    for (SourceId s : directory_.sources_for(label)) {
      if (!hosts(s)) continue;
      if (!prefetch_mark_seen(prefetch_key(a.origin, s))) continue;
      prefetch_queue_.push_back(
          PrefetchItem{true, s, a.query, a.origin, a.deadline_abs});
    }
  }
  if (!prefetch_queue_.empty() && !pump_scheduled_) {
    pump_scheduled_ = true;
    net_.simulator().schedule_after(config_.prefetch_interval,
                                    [this] { pump_prefetch(); });
  }
}

void AthenaNode::handle_request(NodeId from, const ObjectRequest& r) {
  const SimTime now = net_.now();

  // Multipath: only the first copy of a replicated request is processed;
  // later copies converging on this node are suppressed.
  if (!replica_first_copy(r.replica_group, /*kind=*/0)) {
    ++metrics_.replica_duplicates;
    return;
  }

  // Label-cache service (lvfl): if every requested label is covered by a
  // fresh cached label, answer with labels instead of the object —
  // orders-of-magnitude cheaper (Sec. VI-D).
  if (r.accept_labels) {
    std::vector<decision::LabelValue> vals;
    bool all = true;
    for (LabelId l : r.labels) {
      const auto* v = label_cache_.peek(l, now);
      if (v == nullptr) {
        all = false;
        break;
      }
      vals.push_back(*v);
    }
    if (all && !vals.empty()) {
      ++metrics_.label_cache_hits;
      LabelReply reply{std::move(vals), r.query, r.origin, r.source};
      send_msg(from, config_.label_bytes, reply, MsgKind::kLabel, r.priority);
      return;
    }
  }

  // Object service from cache or a hosted sensor.
  if (auto obj = local_object(r.source)) {
    if (!hosts(r.source)) ++metrics_.object_cache_hits;
    const std::uint64_t group = reply_group_for(r);
    reply_with_object(*obj, from, r.query, r.origin, /*prefetch_push=*/false,
                      r.priority, group);
    replicate_reply(ObjectReply{*obj, r.query, r.origin, false, group,
                                r.priority},
                    from, r.origin);
    return;
  }

  // Semantic object substitution (Sec. V-A): a cached object from a
  // *different* source whose field of view covers every requested label is
  // an exact answer for this request — the equivalent of substituting
  // camera2 for camera1 when both see the same scene.
  if (config_.substitute_equivalent_objects && !r.labels.empty()) {
    for (SourceId candidate : directory_.sources_for(r.labels.front())) {
      if (candidate == r.source) continue;
      const auto* cached = object_cache_.peek(candidate, now);
      if (cached == nullptr) continue;
      const bool covers_all = std::all_of(
          r.labels.begin(), r.labels.end(), [&](LabelId l) {
            return cached->readings.contains(SegmentId{l.value()});
          });
      if (!covers_all) continue;
      ++metrics_.substitutions;
      const std::uint64_t group = reply_group_for(r);
      reply_with_object(*cached, from, r.query, r.origin,
                        /*prefetch_push=*/false, r.priority, group);
      replicate_reply(ObjectReply{*cached, r.query, r.origin, false, group,
                                  r.priority},
                      from, r.origin);
      return;
    }
  }

  // Miss: prefetch requests are never forwarded (Sec. VI-B).
  if (r.prefetch) return;

  // Bookmark the interest and forward toward the source.
  interest_order_.insert(r.source);
  auto& entries = interest_table_.find_or_insert(r.source.value());
  entries.remove_if([now](const Interest& e) { return e.expires <= now; });
  entries.push_back(Interest{from, r.query, r.origin, r.labels, r.prefetch,
                             r.accept_labels, r.priority,
                             now + config_.interest_ttl});
  trace(obs::EventKind::kInterest, r.query, r.source.value());
  schedule_gc();
  forward_request(r);
}

void AthenaNode::forward_request(const ObjectRequest& r) {
  const SimTime now = net_.now();
  const NodeId dest = directory_.host(r.source);
  const auto next = net_.next_hop(id_, dest);
  if (!next || *next == id_) return;  // unreachable or we are the host

  // Interest aggregation: if an equivalent upstream request is already in
  // flight, the pending reply will serve this interest too.
  if (const SimTime* lease_until = forwarded_.find(r.source.value());
      lease_until != nullptr && *lease_until > now) {
    ++metrics_.interest_aggregations;
    return;
  }
  // The marker lease defaults to the full request timeout; a configured
  // recovery_lease caps it so markers whose upstream copy could die with a
  // crashed hop expire early (crash recovery; no-op at zero, the default).
  SimTime lease = config_.request_timeout;
  if (config_.recovery_lease > SimTime::zero() &&
      config_.recovery_lease < lease) {
    lease = config_.recovery_lease;
  }
  forwarded_.find_or_insert(r.source.value()) = now + lease;
  schedule_gc();
  send_msg(*next, config_.request_bytes, r, MsgKind::kRequest, r.priority);
}

std::uint64_t AthenaNode::new_replica_group() {
  // Node-local counter spread by node id: unique across a run's nodes
  // without shared state (a node exhausting 10^6 groups would collide, far
  // beyond any run here).
  return id_.value() * 1000000 + ++next_replica_group_;
}

std::uint64_t AthenaNode::reply_group_for(const ObjectRequest& r) {
  if (config_.multipath_redundancy <= 1 || r.priority <= 0) {
    return r.replica_group;
  }
  return r.replica_group != 0 ? r.replica_group : new_replica_group();
}

bool AthenaNode::replica_first_copy(std::uint64_t group, int kind) {
  if (group == 0) return true;  // untagged: single-path traffic
  if (!replica_dedup_) {
    replica_dedup_.emplace(config_.replica_dedup_capacity,
                           config_.replica_dedup_ttl);
  }
  // One key space for both legs of a group: requests on even, replies on
  // odd, so a reply reusing its request's group still deduplicates.
  return replica_dedup_->accept(group * 2 + static_cast<std::uint64_t>(kind),
                                net_.now());
}

void AthenaNode::replicate_request(const ObjectRequest& r, NodeId primary_next,
                                   NodeId dest) {
  if (config_.multipath_redundancy <= 1 || r.replica_group == 0) return;
  for (NodeId alt : net::alternate_next_hops(net_.topology(), id_, dest,
                                             config_.multipath_redundancy - 1,
                                             {primary_next})) {
    ++metrics_.replica_copies;
    send_msg(alt, config_.request_bytes, r, MsgKind::kRequest, r.priority);
  }
}

void AthenaNode::replicate_reply(const ObjectReply& r, NodeId primary_next,
                                 NodeId dest) {
  if (config_.multipath_redundancy <= 1 || r.replica_group == 0) return;
  if (dest == id_) return;  // the requester is this node; nothing to fan out
  for (NodeId alt : net::alternate_next_hops(net_.topology(), id_, dest,
                                             config_.multipath_redundancy - 1,
                                             {primary_next})) {
    ++metrics_.replica_copies;
    ++metrics_.object_reply_hops;
    send_msg(alt, r.object.bytes, r, MsgKind::kObject, r.priority);
  }
}

void AthenaNode::reply_with_object(const world::EvidenceObject& obj,
                                   NodeId to, QueryId query, NodeId origin,
                                   bool prefetch_push, int priority,
                                   std::uint64_t replica_group) {
  ObjectReply reply{obj, query, origin, prefetch_push, replica_group,
                    priority};
  ++metrics_.object_reply_hops;
  if (prefetch_push) {
    // Background traffic: yields to every foreground class at link queues.
    metrics_.push_bytes += obj.bytes;
    net::Packet pkt;
    pkt.src = id_;
    pkt.dst = to;
    pkt.bytes = obj.bytes;
    pkt.priority = -1;
    pkt.payload = std::move(reply);
    net_.send(id_, to, std::move(pkt));
    return;
  }
  send_msg(to, obj.bytes, std::move(reply), MsgKind::kObject, priority);
}

void AthenaNode::handle_reply(NodeId from, const ObjectReply& r) {
  (void)from;
  const SimTime now = net_.now();
  const world::EvidenceObject& obj = r.object;

  // Multipath: drop later copies of a replicated reply before caching so
  // each node processes (and forwards) a group's reply exactly once.
  if (!replica_first_copy(r.replica_group, /*kind=*/1)) {
    ++metrics_.replica_duplicates;
    return;
  }

  // Cache along the way (Sec. VI-C).
  if (obj.fresh_at(now)) {
    object_cache_.put(obj.source, obj, obj.expires_at(), now);
  }
  forwarded_.erase(obj.source.value());

  // Serve all pending interests for this source.
  std::vector<Interest> consumers;
  if (auto* entries = interest_table_.find(obj.source.value())) {
    consumers.reserve(entries->size());
    for (Interest& e : *entries) consumers.push_back(std::move(e));
    interest_table_.erase(obj.source.value());
    interest_order_.erase(obj.source);
  }
  bool delivered_locally = false;
  bool forwarded_any = false;
  SmallSet<NodeId, 4> sent_to;
  for (const Interest& e : consumers) {
    if (e.expires <= now) continue;
    if (!e.from.valid()) {
      delivered_locally = true;
    } else if (sent_to.insert(e.from)) {
      reply_with_object(obj, e.from, e.query, e.origin, r.prefetch_push,
                        e.priority, r.replica_group);
      forwarded_any = true;
    }
  }

  // A prefetch push keeps moving toward the query origin even without
  // interests (Fig. 1: the source pushes u all the way to the requester).
  if (r.prefetch_push && !forwarded_any && r.origin != id_) {
    if (const auto next = net_.next_hop(id_, r.origin);
        next && *next != id_) {
      reply_with_object(obj, *next, r.query, r.origin, true, -1);
    }
  }

  // A replica copy travelling an alternate path crosses nodes that never
  // bookmarked an interest; keep it moving toward the query origin so the
  // redundant path stays end-to-end.
  if (r.replica_group != 0 && !r.prefetch_push && !forwarded_any &&
      !delivered_locally && r.origin != id_) {
    if (const auto next = net_.next_hop(id_, r.origin);
        next && *next != id_) {
      reply_with_object(obj, *next, r.query, r.origin, false, r.priority,
                        r.replica_group);
    }
  }

  if (delivered_locally || (r.prefetch_push && r.origin == id_)) {
    deliver_object(obj);
  }
}

void AthenaNode::handle_label_share(NodeId from, const LabelShare& s) {
  (void)from;
  const SimTime now = net_.now();
  // Cache fresher label values along the path (Sec. VI-D).
  std::vector<decision::LabelValue> fresher;
  for (const auto& v : s.values) {
    const auto* existing = label_cache_.peek(v.label, now);
    if (existing && existing->expires_at() >= v.expires_at()) continue;
    if (v.expires_at() > now) {
      label_cache_.put(v.label, v, v.expires_at(), now);
      fresher.push_back(v);
    }
  }

  // Local queries may be waiting on exactly these labels.
  if (!fresher.empty()) {
    apply_labels_to_queries(fresher);
    std::vector<QueryId> ids;
    // lint: ordered-fold — order-pinned site (docs/STATIC_ANALYSIS.md):
    // advance() order below is part of the replayed trajectory.
    for (auto& [qid, slot] : queries_) {
      if (slot != kRetiredSlot && !query_pool_.at(slot).finished) {
        ids.push_back(qid);
      }
    }
    for (QueryId qid : ids) {
      QueryState* state = lookup_query(qid);
      if (state != nullptr) advance(*state);
    }
  }

  // Serve pending label-accepting interests that are now fully covered.
  // lint: ordered-fold — order-pinned site (docs/STATIC_ANALYSIS.md): reply
  // send order below is part of the replayed trajectory; interest_order_
  // reproduces the pre-flat table's iteration order (see node.h).
  for (const SourceId source : interest_order_) {
    auto* entries = interest_table_.find(source.value());
    if (entries == nullptr) continue;
    SmallVec<Interest, 2> keep;
    for (Interest& e : *entries) {
      if (e.expires <= now) continue;
      bool all = e.accept_labels && e.from.valid() && !e.labels.empty();
      std::vector<decision::LabelValue> vals;
      if (all) {
        for (LabelId l : e.labels) {
          const auto* v = label_cache_.peek(l, now);
          if (v == nullptr) {
            all = false;
            break;
          }
          vals.push_back(*v);
        }
      }
      if (all) {
        ++metrics_.label_cache_hits;
        LabelReply reply{std::move(vals), e.query, e.origin, source};
        send_msg(e.from, config_.label_bytes, reply, MsgKind::kLabel,
                 e.priority);
      } else {
        keep.push_back(std::move(e));
      }
    }
    *entries = std::move(keep);
  }

  // Keep propagating toward the data source's host.
  if (s.toward != id_) {
    if (const auto next = net_.next_hop(id_, s.toward); next && *next != id_) {
      send_msg(*next, config_.label_bytes, s, MsgKind::kLabel);
    }
  }
}

void AthenaNode::handle_label_reply(NodeId from, const LabelReply& r) {
  (void)from;
  const SimTime now = net_.now();
  // The upstream interest this node forwarded (if any) was consumed by a
  // label answer; a later object request for the same source must be
  // forwarded anew rather than aggregated into the finished one.
  forwarded_.erase(r.source.value());
  for (const auto& v : r.values) {
    const auto* existing = label_cache_.peek(v.label, now);
    if (existing && existing->expires_at() >= v.expires_at()) continue;
    if (v.expires_at() > now) label_cache_.put(v.label, v, v.expires_at(), now);
  }
  if (r.origin == id_) {
    apply_labels_to_queries(r.values);
    // lint: ordered-fold — independent per-query erase, no output emitted.
    for (auto& [qid, slot] : queries_) {
      if (slot != kRetiredSlot) query_pool_.at(slot).outstanding.erase(r.source);
    }
    std::vector<QueryId> ids;
    // lint: ordered-fold — order-pinned site (docs/STATIC_ANALYSIS.md):
    // advance() order below is part of the replayed trajectory.
    for (auto& [qid, slot] : queries_) {
      if (slot != kRetiredSlot && !query_pool_.at(slot).finished) {
        ids.push_back(qid);
      }
    }
    for (QueryId qid : ids) {
      QueryState* state = lookup_query(qid);
      if (state != nullptr) advance(*state);
    }
  } else if (const auto next = net_.next_hop(id_, r.origin);
             next && *next != id_) {
    send_msg(*next, config_.label_bytes, r, MsgKind::kLabel);
  }
}

void AthenaNode::share_labels(const std::vector<decision::LabelValue>& values,
                              SourceId produced_by) {
  const NodeId toward = directory_.host(produced_by);
  if (toward == id_) return;
  if (const auto next = net_.next_hop(id_, toward); next && *next != id_) {
    send_msg(*next, config_.label_bytes, LabelShare{values, toward},
             MsgKind::kLabel);
  }
}

void AthenaNode::broadcast_invalidation(const std::vector<LabelId>& labels) {
  drain_retired();
  Invalidation inv;
  // Flood-unique id: node id in the high digits, like query ids. A local
  // counter (not the dedup-set size) keeps ids unique as entries expire.
  inv.id = id_.value() * 1000000ULL + 900000ULL + next_invalidation_++;
  inv.labels = labels;
  inv.issued_at = net_.now();
  inv.ttl = 64;  // network-wide
  invalidations_seen_.insert_if_absent(inv.id, net_.now() + config_.dedup_ttl);
  schedule_gc();
  apply_invalidation(labels);
  for (NodeId nb : net_.topology().neighbors(id_)) {
    send_msg(nb, config_.label_bytes, inv, MsgKind::kLabel, /*priority=*/1);
  }
}

void AthenaNode::handle_invalidation(NodeId from, const Invalidation& inv) {
  if (!invalidations_seen_.insert_if_absent(inv.id,
                                            net_.now() + config_.dedup_ttl)) {
    return;
  }
  schedule_gc();
  if (inv.ttl > 0) {
    Invalidation next = inv;
    next.ttl = inv.ttl - 1;
    for (NodeId nb : net_.topology().neighbors(id_)) {
      if (nb != from) {
        send_msg(nb, config_.label_bytes, next, MsgKind::kLabel, 1);
      }
    }
  }
  if (config_.honor_invalidations) apply_invalidation(inv.labels);
}

void AthenaNode::apply_invalidation(const std::vector<LabelId>& labels) {
  const std::unordered_set<LabelId> set(labels.begin(), labels.end());
  for (LabelId l : labels) {
    label_cache_.erase_key(l);
    beliefs_.erase(l);
  }
  // Objects whose readings evidence any invalidated label are void too.
  object_cache_.erase_if([&](SourceId, const world::EvidenceObject& obj) {
    // lint: ordered-fold — pure any-of over readings, commutative.
    for (const auto& [segment, value] : obj.readings) {
      if (set.contains(LabelId{segment.value()})) return true;
    }
    return false;
  });
  // Re-open affected decisions.
  std::vector<QueryId> affected;
  // lint: ordered-fold — order-pinned site (docs/STATIC_ANALYSIS.md):
  // advance() order below is part of the replayed trajectory.
  for (auto& [qid, slot] : queries_) {
    if (slot == kRetiredSlot) continue;
    QueryState& q = query_pool_.at(slot);
    if (q.finished) continue;
    bool touched = false;
    for (LabelId l : labels) {
      if (q.label_set.contains(l)) {
        q.assignment.invalidate(l);
        touched = true;
      }
    }
    if (touched) affected.push_back(qid);
  }
  for (QueryId qid : affected) {
    QueryState* state = lookup_query(qid);
    if (state != nullptr) advance(*state);
  }
}

// ---------------------------------------------------------------------------
// Prefetching (background queue, Sec. VI-A)
// ---------------------------------------------------------------------------

bool AthenaNode::prefetch_congested(const PrefetchItem& item) const {
  if (config_.prefetch_watermark == 0) return false;
  const NodeId toward =
      item.push ? item.origin : directory_.host(item.source);
  const auto next = net_.next_hop(id_, toward);
  if (!next || *next == id_) return false;
  const auto link = net_.topology().link_between(id_, *next);
  if (!link) return false;
  return net_.queue_length(*link) > config_.prefetch_watermark;
}

void AthenaNode::pump_prefetch() {
  drain_retired();
  pump_scheduled_ = false;
  const SimTime now = net_.now();
  // Backpressure (overload protection): while the first hop of the head
  // item sits above the congestion watermark, hold the whole pump — the
  // background traffic would only deepen the queue it is observing — and
  // re-check at the throttle interval.
  if (!prefetch_queue_.empty() && prefetch_congested(prefetch_queue_.front())) {
    ++metrics_.prefetch_throttled;
    pump_scheduled_ = true;
    net_.simulator().schedule_after(config_.prefetch_throttle_interval,
                                    [this] { pump_prefetch(); });
    return;
  }
  if (!prefetch_queue_.empty()) {
    PrefetchItem item = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    if (now < item.deadline_abs) {
      if (item.push) {
        if (auto obj = local_object(item.source)) {
          if (const auto next = net_.next_hop(id_, item.origin);
              next && *next != id_) {
            ++metrics_.prefetch_pushes;
            reply_with_object(*obj, *next, item.query, item.origin,
                              /*prefetch_push=*/true, /*priority=*/-1);
          }
        }
      } else {
        ObjectRequest r;
        r.query = item.query;
        r.origin = item.origin;
        r.source = item.source;
        r.labels = directory_.labels_of(item.source);
        r.prefetch = true;
        r.accept_labels = false;
        r.deadline_abs = item.deadline_abs;
        r.priority = -1;
        if (const auto next =
                net_.next_hop(id_, directory_.host(item.source));
            next && *next != id_) {
          send_msg(*next, config_.request_bytes, r, MsgKind::kRequest, -1);
        }
      }
    }
  }
  if (!prefetch_queue_.empty()) {
    pump_scheduled_ = true;
    net_.simulator().schedule_after(config_.prefetch_interval,
                                    [this] { pump_prefetch(); });
  }
}

// ---------------------------------------------------------------------------
// Crash/restart semantics (fault::FaultInjector node hook)
// ---------------------------------------------------------------------------
//
// Ghost — the pre-restart-semantics behaviour and the default — never
// reaches these bodies: an outage only silences the node's links while all
// protocol state survives. Cold and warm model a real process death: the
// crash drops every in-flight local query to the terminal failed_crash
// outcome and wipes the soft state a restart could not recover from disk.
// Monotonic id counters (query, invalidation, replica group) survive on
// purpose — they are what keeps post-restart identifiers unique — and the
// records_ vector survives because it is the experiment's measurement log,
// not node state. Pending pump/GC callbacks are left armed: they are
// written to no-op against empty tables and re-arm only when state exists.

void AthenaNode::on_crash(fault::RestartPolicy policy) {
  if (policy == fault::RestartPolicy::kGhost) return;

  // In-flight local queries die with the process: their watchdogs, partial
  // assignments, and outstanding requests are gone, so no future arrival
  // could ever resolve them.
  drain_retired();
  std::uint64_t dropped = 0;
  for (QueryId qid : sorted_keys(queries_)) {
    QueryState* state = lookup_query(qid);
    if (state == nullptr || state->finished) continue;
    finish(*state, /*success=*/false, /*shed=*/false, /*crashed=*/true);
    ++dropped;
  }

  // Volatile protocol tables are lost under every non-ghost policy.
  interest_table_.clear();
  interest_order_.clear();
  forwarded_.clear();
  announces_seen_.clear();
  invalidations_seen_.clear();
  prefetch_queue_.clear();
  prefetch_seen_.clear();
  prefetch_seen_fifo_.clear();
  replica_dedup_.reset();
  if (policy == fault::RestartPolicy::kCold) {
    // Cold also loses what warm restarts recover from local storage:
    // cached objects/labels, corroboration beliefs, and the ingest log.
    object_cache_.clear();
    label_cache_.clear();
    beliefs_.clear();
    ingested_.clear();
  }
  trace(obs::EventKind::kNodeCrash, QueryId{0}, dropped);
}

void AthenaNode::on_restart(fault::RestartPolicy policy) {
  if (policy == fault::RestartPolicy::kGhost) return;
  ++restart_epoch_;
  ++metrics_.node_restarts;
  trace(obs::EventKind::kNodeRestart, QueryId{0}, restart_epoch_);
  if (!config_.crash_recovery) return;

  // Recovery protocol, restarted side: re-announce to every neighbor that
  // this node's soft state is gone. One hop only — the damage a crash does
  // to other nodes' tables is confined to entries whose next hop is this
  // node, so neighbors are exactly the audience.
  const RecoveryHello hello{id_, restart_epoch_, net_.now()};
  for (NodeId nb : net_.topology().neighbors(id_)) {
    send_msg(nb, config_.hello_bytes, hello, MsgKind::kControl, /*priority=*/1);
  }
}

void AthenaNode::handle_recovery_hello(const RecoveryHello& hello) {
  if (!config_.crash_recovery) return;
  const SimTime now = net_.now();
  ++metrics_.recovery_hellos;
  const double lag_s = (now - hello.restarted_at).to_seconds();
  metrics_.total_recovery_lag_s += lag_s;
  trace(obs::EventKind::kRecoveryHello, QueryId{0}, hello.node.value(), 0,
        lag_s);

  // Every aggregation marker whose upstream path (re)runs through the
  // restarted node is a dangling promise: the interest-table entry backing
  // it died in the crash, so the reply it waits for will never route back.
  // Purge the marker and re-issue the first live, foreground downstream
  // interest upstream — the lease-stamped entries a crashed hop orphaned
  // recover in one hop-trip instead of a full downstream retry timeout.
  for (const std::uint64_t source_key : forwarded_.sorted_keys()) {
    if (forwarded_.find(source_key) == nullptr) continue;
    const SourceId s{source_key};
    const NodeId dest = directory_.host(s);
    const auto next = net_.next_hop(id_, dest);
    if (!next || *next != hello.node) continue;
    forwarded_.erase(source_key);
    ++metrics_.recovery_marker_purges;

    const auto* entries = interest_table_.find(source_key);
    if (entries == nullptr) continue;
    const Interest* live = nullptr;
    for (const Interest& e : *entries) {
      if (e.expires > now && !e.prefetch) {
        live = &e;
        break;
      }
    }
    if (live == nullptr) continue;
    ObjectRequest r;
    r.query = live->query;
    r.origin = live->origin;
    r.source = s;
    r.labels = live->labels;
    r.prefetch = false;
    r.accept_labels = live->accept_labels;
    r.deadline_abs = live->expires;
    r.priority = live->priority;
    forward_request(r);
    ++metrics_.recovery_reissues;
  }
}

// ---------------------------------------------------------------------------
// State garbage collection
// ---------------------------------------------------------------------------
//
// Interest-table and aggregation entries are purged opportunistically on
// matching-source access; entries for sources that never reply again would
// linger forever without this sweep. It arms itself only while droppable
// state exists, so an idle node schedules nothing and a drained simulation
// terminates.

void AthenaNode::schedule_gc() {
  if (gc_scheduled_) return;
  if (interest_table_.empty() && forwarded_.empty() &&
      announces_seen_.empty() && invalidations_seen_.empty()) {
    return;
  }
  gc_scheduled_ = true;
  net_.simulator().schedule_after(config_.state_gc_interval,
                                  [this] { run_gc(); });
}

void AthenaNode::run_gc() {
  gc_scheduled_ = false;
  const SimTime now = net_.now();
  interest_table_.erase_if(
      [now, this](std::uint64_t key, SmallVec<Interest, 2>& entries) {
        entries.remove_if([now](const Interest& e) { return e.expires <= now; });
        if (!entries.empty()) return false;
        interest_order_.erase(SourceId{key});
        return true;
      });
  forwarded_.erase_if([now](std::uint64_t, SimTime t) { return t <= now; });
  announces_seen_.erase_if(
      [now](std::uint64_t, SimTime t) { return t <= now; });
  invalidations_seen_.erase_if(
      [now](std::uint64_t, SimTime t) { return t <= now; });
  // Expensive interest-table sweep (DDE_INVARIANTS builds only): GC must
  // leave no empty per-source list and no expired entry behind.
  DDE_INVARIANT(
      ([&] {
        bool ok = true;
        interest_table_.for_each(
            [&](std::uint64_t, const SmallVec<Interest, 2>& entries) {
              if (entries.empty()) ok = false;
              for (const Interest& e : entries) {
                if (e.expires <= now) ok = false;
              }
            });
        return ok;
      }()),
      "run_gc: interest table retained an empty list or expired entry");
  schedule_gc();
}

// ---------------------------------------------------------------------------
// Local object service
// ---------------------------------------------------------------------------

std::optional<world::EvidenceObject> AthenaNode::local_object(SourceId source) {
  const SimTime now = net_.now();
  if (const auto* obj = object_cache_.peek(source, now)) return *obj;
  if (hosts(source)) {
    world::EvidenceObject obj = field_.sample(source, now);
    ++metrics_.sensor_samples;
    object_cache_.put(source, obj, obj.expires_at(), now);
    return obj;
  }
  return std::nullopt;
}

void AthenaNode::send_msg(NodeId next, std::uint64_t bytes, std::any payload,
                          MsgKind kind, int priority) {
  switch (kind) {
    case MsgKind::kRequest: metrics_.request_bytes += bytes; break;
    case MsgKind::kObject: metrics_.object_bytes += bytes; break;
    case MsgKind::kAnnounce: metrics_.announce_bytes += bytes; break;
    case MsgKind::kLabel: metrics_.label_bytes += bytes; break;
    case MsgKind::kControl: metrics_.control_bytes += bytes; break;
  }
  net::Packet pkt;
  pkt.src = id_;
  pkt.dst = next;
  pkt.bytes = bytes;
  pkt.priority = priority;
  pkt.payload = std::move(payload);
  net_.send(id_, next, std::move(pkt));
}

}  // namespace dde::athena
