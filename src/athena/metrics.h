// Global experiment counters shared by all Athena nodes in one run.
#pragma once

#include <cstdint>

namespace dde::athena {

/// Aggregated over every node of a run. Byte counters count each hop a
/// message crosses (total network bandwidth consumption, the Fig. 3 metric,
/// broken down by message kind).
struct AthenaMetrics {
  // Query outcomes.
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_resolved = 0;  ///< decision reached by the deadline
  std::uint64_t queries_failed = 0;    ///< deadline passed unresolved
  double total_resolution_latency_s = 0.0;  ///< over resolved queries

  // Per-hop bytes by message kind.
  std::uint64_t object_bytes = 0;   ///< foreground object replies
  std::uint64_t push_bytes = 0;     ///< background prefetch pushes
  std::uint64_t request_bytes = 0;
  std::uint64_t announce_bytes = 0;
  std::uint64_t label_bytes = 0;

  // Request accounting.
  std::uint64_t object_requests = 0;   ///< origin-issued object requests
  std::uint64_t object_reply_hops = 0; ///< hop-sends of object replies

  // Mechanism counters.
  std::uint64_t sensor_samples = 0;
  std::uint64_t object_cache_hits = 0;   ///< requests served from a cache
  std::uint64_t label_cache_hits = 0;    ///< requests served by cached labels
  std::uint64_t stale_arrivals = 0;      ///< objects expired in transit
  std::uint64_t refetches = 0;           ///< repeat requests by one query
  std::uint64_t prefetch_pushes = 0;
  std::uint64_t interest_aggregations = 0;  ///< duplicate upstreams avoided
  std::uint64_t substitutions = 0;   ///< equivalent-object substitutions served

  // Overload-protection counters (all zero unless the knobs are enabled).
  std::uint64_t queries_shed = 0;      ///< early aborts: deadline provably
                                       ///< infeasible (shed_infeasible)
  std::uint64_t queries_rejected = 0;  ///< admission-control rejections of
                                       ///< low-priority queries at issue
  std::uint64_t prefetch_throttled = 0;  ///< pump deferrals while the next
                                         ///< hop queue sat above watermark
  std::uint64_t queue_drops = 0;  ///< bounded-queue evictions (mirrors
                                  ///< TrafficStats::queue_drops)

  // Multipath-redundancy counters (zero unless multipath_redundancy > 1).
  std::uint64_t replica_copies = 0;      ///< redundant copies transmitted
  std::uint64_t replica_duplicates = 0;  ///< copies suppressed by dedup

  // Recovery counters (fault subsystem, src/fault).
  std::uint64_t retries = 0;     ///< request watchdog timeouts → re-issues
  std::uint64_t failovers = 0;   ///< labels re-designated to an alternate
                                 ///< source after retry exhaustion
  std::uint64_t link_down_drops = 0;  ///< packets lost to link/node outages
                                      ///< (mirrors TrafficStats)
  std::uint64_t reroutes = 0;    ///< route recomputations after topology
                                 ///< changes (from fault::FaultStats)

  // Crash-recovery counters (restart semantics; all zero under the default
  // "ghost" restart policy, which never invokes the crash/restart hooks).
  std::uint64_t queries_failed_crash = 0;  ///< in-flight local queries
                                           ///< dropped when their node
                                           ///< crashed (terminal outcome,
                                           ///< distinct from queries_failed)
  std::uint64_t node_restarts = 0;        ///< non-ghost restarts processed
  std::uint64_t recovery_hellos = 0;      ///< restart hellos processed by
                                          ///< neighbors
  std::uint64_t recovery_marker_purges = 0;  ///< aggregation markers purged
                                             ///< because they routed through
                                             ///< a freshly restarted node
  std::uint64_t recovery_reissues = 0;    ///< upstream interests re-issued
                                          ///< for live downstream entries
  double total_recovery_lag_s = 0.0;      ///< Σ restart → hello-processed lag
  std::uint64_t control_bytes = 0;        ///< recovery control traffic

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return object_bytes + push_bytes + request_bytes + announce_bytes +
           label_bytes + control_bytes;
  }
  /// Mean restart → neighbor-hello-processed lag: how long the network took
  /// to learn about a restart (the recovery_time metric of the chaos bench).
  [[nodiscard]] double mean_recovery_time_s() const noexcept {
    return recovery_hellos == 0
               ? 0.0
               : total_recovery_lag_s / static_cast<double>(recovery_hellos);
  }
  [[nodiscard]] double resolution_ratio() const noexcept {
    return queries_issued == 0
               ? 0.0
               : static_cast<double>(queries_resolved) /
                     static_cast<double>(queries_issued);
  }
  [[nodiscard]] double mean_latency_s() const noexcept {
    return queries_resolved == 0
               ? 0.0
               : total_resolution_latency_s /
                     static_cast<double>(queries_resolved);
  }
};

}  // namespace dde::athena
