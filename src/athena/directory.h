// Semantic lookup service (stands in for [8], [9] of the paper).
//
// The directory answers "which sources can supply evidence for this label,
// where do they live, and what will retrieval roughly cost?". The paper
// treats this service as given; we implement it as a consistent global
// index built at scenario setup — sources advertise (Sec. II-B) and every
// node can query the index. It also hosts the source-selection step
// (Sec. III-B / [10]) as a weighted set cover over the query's labels.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "coverage/set_cover.h"
#include "decision/metadata.h"
#include "net/topology.h"
#include "world/sensor_field.h"

namespace dde::athena {

/// Global advertisement index + cost model.
class Directory {
 public:
  /// `host_of_sensor[i]` = network node hosting sensor i.
  /// `p_true[label]` = estimated probability that the label is true
  /// (e.g. the stationary viability probability of the segment).
  Directory(const net::Topology& topo, const world::SensorField& field,
            std::vector<NodeId> host_of_sensor,
            std::unordered_map<LabelId, double> p_true);

  /// Sources whose evidence can resolve `label` (empty if none).
  [[nodiscard]] const std::vector<SourceId>& sources_for(LabelId label) const;

  /// The node hosting `source`.
  [[nodiscard]] NodeId host(SourceId source) const;

  [[nodiscard]] const world::SensorInfo& sensor(SourceId source) const {
    return field_.sensor(source);
  }

  /// Labels a source's objects can resolve.
  [[nodiscard]] std::vector<LabelId> labels_of(SourceId source) const;

  /// Retrieval cost of `source`'s object as seen from `origin`:
  /// object bytes × path hop count (bytes crossing each hop are paid once).
  [[nodiscard]] double retrieval_cost(SourceId source, NodeId origin) const;

  /// Rough retrieval latency estimate from `origin` (request + transfer).
  [[nodiscard]] SimTime retrieval_latency(SourceId source, NodeId origin) const;

  /// Planner metadata for `label` when its evidence comes from `source`.
  [[nodiscard]] decision::LabelMeta meta(LabelId label, SourceId source,
                                         NodeId origin) const;

  /// Source selection for a query.
  struct Selection {
    /// designated[label] = the source a retrieval for that label targets.
    std::unordered_map<LabelId, SourceId> designated;
    /// All (source, labels it is designated for) pairs, for batch issue.
    std::vector<std::pair<SourceId, std::vector<LabelId>>> requests;
    /// Labels no source covers.
    std::vector<LabelId> uncovered;
  };

  /// Choose sources to cover `labels` as seen from `origin`.
  /// minimize=true → greedy weighted set cover (the `slt` step, [10]);
  /// minimize=false → every covering source is requested (the `cmp`
  /// baseline: each label is designated its cheapest source, but the
  /// request list contains all covering sources).
  ///
  /// `exclude` (may be null) soft-avoids sources a caller has given up on
  /// — failover after retry exhaustion (src/fault recovery): an excluded
  /// source is skipped unless it is the *only* one covering a label, in
  /// which case it stays eligible for that label rather than abandoning
  /// the query outright.
  [[nodiscard]] Selection select_sources(
      const std::vector<LabelId>& labels, NodeId origin, bool minimize,
      const std::unordered_set<SourceId>* exclude = nullptr) const;

 private:
  const net::Topology& topo_;
  const world::SensorField& field_;
  std::vector<NodeId> host_of_sensor_;
  std::unordered_map<LabelId, std::vector<SourceId>> sources_for_label_;
  std::unordered_map<LabelId, double> p_true_;
};

}  // namespace dde::athena
