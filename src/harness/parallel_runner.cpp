#include "harness/parallel_runner.h"

#include <cstdlib>
#include <string>

namespace dde::harness {

std::size_t hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t env_jobs() noexcept {
  const char* raw = std::getenv("DDE_BENCH_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0) return 0;
  return static_cast<std::size_t>(value);
}

std::size_t job_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const std::size_t env = env_jobs();
  if (env > 0) return env;
  return hardware_jobs();
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const common::MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const common::MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  const common::MutexLock lock(&mutex_);
  cv_idle_.wait(mutex_, [this]() DDE_REQUIRES(mutex_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::worker_loop() {
  // Explicit lock()/unlock() instead of a scoped guard: the lock drops
  // around task() and the thread-safety analysis follows the hand-rolled
  // discipline where it could not follow a relockable unique_lock.
  mutex_.lock();
  for (;;) {
    while (!stopping_ && queue_.empty()) cv_work_.wait(mutex_);
    if (queue_.empty()) {
      mutex_.unlock();
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    mutex_.unlock();
    task();
    mutex_.lock();
    --active_;
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

}  // namespace dde::harness
