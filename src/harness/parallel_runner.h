// Parallel replication runner for the experiment harnesses.
//
// Every experiment binary runs a scheme × config × seed grid where each
// seed is an independent, deterministic des::Simulator run — embarrassingly
// parallel replication trials. This module fans those trials out across a
// small thread pool while keeping every published number bit-identical to
// the serial harness: workers only *compute* (each task owns its full
// simulation state — Simulator, Rng, TraceSink); all aggregation happens on
// the calling thread, in deterministic index (seed) order, after the
// workers finish. Text tables and BENCH_*.json are therefore byte-identical
// at any thread count.
//
// Environment knob:
//   DDE_BENCH_JOBS=<n>  worker threads for replication fan-out.
//                       1 = run inline on the caller (exact legacy path,
//                           no threads created);
//                       unset/0/invalid = hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dde::harness {

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] std::size_t hardware_jobs() noexcept;

/// DDE_BENCH_JOBS parsed as a positive integer; 0 when unset or invalid.
[[nodiscard]] std::size_t env_jobs() noexcept;

/// Worker-count resolution used by run_indexed: an explicit `requested` > 0
/// wins, then DDE_BENCH_JOBS, then hardware concurrency. Never returns 0.
[[nodiscard]] std::size_t job_count(std::size_t requested = 0) noexcept;

/// A small fixed-size thread pool. Tasks are run in submission order by
/// whichever worker frees up first; wait_idle() blocks until every
/// submitted task has finished. The destructor waits for queued work.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one task. Tasks must not submit to the same pool they run on
  /// while wait_idle() is in flight (the replication runner never does).
  void submit(std::function<void()> task) DDE_EXCLUDES(mutex_);

  /// Block until the queue is empty and no worker is mid-task.
  void wait_idle() DDE_EXCLUDES(mutex_);

 private:
  void worker_loop() DDE_EXCLUDES(mutex_);

  // All pool state below is guarded by mutex_; clang's -Wthread-safety
  // verifies every access (the CI lint job builds with -Werror). The
  // condition variables are condition_variable_any so they can wait on
  // the annotated common::Mutex directly.
  common::Mutex mutex_;
  std::condition_variable_any cv_work_;
  std::condition_variable_any cv_idle_;
  std::deque<std::function<void()>> queue_ DDE_GUARDED_BY(mutex_);
  std::size_t active_ DDE_GUARDED_BY(mutex_) = 0;
  bool stopping_ DDE_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Run `fn(0) … fn(n-1)`, each task independent, and return the results in
/// index order. With `jobs` (resolved via job_count) == 1 — or n <= 1 —
/// tasks run inline on the calling thread in index order: the exact legacy
/// serial path, no threads created. Otherwise tasks are fanned out across a
/// pool of min(jobs, n) workers and the caller blocks until all complete;
/// the first exception thrown by any task is rethrown here after the pool
/// drains. Results are *computed* concurrently but *collected* in index
/// order, so any fold the caller performs over the returned vector is
/// bit-identical to folding inside a serial loop.
template <typename Fn>
auto run_indexed(std::size_t n, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  const std::size_t workers = job_count(jobs);
  std::vector<R> out;
  out.reserve(n);
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  std::vector<std::optional<R>> slots(n);
  std::mutex error_mutex;
  std::exception_ptr error;
  {
    ThreadPool pool(std::min(workers, n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&fn, &slots, &error_mutex, &error, i] {
        try {
          slots[i].emplace(fn(i));
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (error) std::rethrow_exception(error);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace dde::harness
