// Umbrella header: the whole decision-driven-execution library.
//
// Prefer including the specific module headers in production code; this
// header exists for examples, experiments, and quick starts.
#pragma once

#include "athena/config.h"       // IWYU pragma: export
#include "athena/directory.h"    // IWYU pragma: export
#include "athena/messages.h"     // IWYU pragma: export
#include "athena/metrics.h"      // IWYU pragma: export
#include "athena/node.h"         // IWYU pragma: export
#include "cache/ttl_cache.h"     // IWYU pragma: export
#include "common/ids.h"          // IWYU pragma: export
#include "common/log.h"          // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/sim_time.h"     // IWYU pragma: export
#include "common/stats.h"        // IWYU pragma: export
#include "common/tristate.h"     // IWYU pragma: export
#include "coverage/set_cover.h"  // IWYU pragma: export
#include "decision/algebra.h"    // IWYU pragma: export
#include "decision/estimator.h"  // IWYU pragma: export
#include "decision/expression.h" // IWYU pragma: export
#include "decision/label.h"      // IWYU pragma: export
#include "decision/metadata.h"   // IWYU pragma: export
#include "decision/ordering.h"   // IWYU pragma: export
#include "decision/planner.h"    // IWYU pragma: export
#include "des/periodic.h"        // IWYU pragma: export
#include "des/simulator.h"       // IWYU pragma: export
#include "fusion/belief.h"       // IWYU pragma: export
#include "fusion/corroboration.h" // IWYU pragma: export
#include "fusion/reliability.h"  // IWYU pragma: export
#include "naming/name.h"         // IWYU pragma: export
#include "naming/prefix_index.h" // IWYU pragma: export
#include "net/name_routing.h"    // IWYU pragma: export
#include "net/network.h"         // IWYU pragma: export
#include "net/topology.h"        // IWYU pragma: export
#include "pubsub/utility.h"      // IWYU pragma: export
#include "sched/lvf.h"           // IWYU pragma: export
#include "sched/multichannel.h"  // IWYU pragma: export
#include "scenario/route_scenario.h"   // IWYU pragma: export
#include "scenario/trigger_scenario.h" // IWYU pragma: export
#include "workflow/mining.h"     // IWYU pragma: export
#include "workflow/workflow.h"   // IWYU pragma: export
#include "world/dynamics.h"      // IWYU pragma: export
#include "world/evidence.h"      // IWYU pragma: export
#include "world/grid_map.h"      // IWYU pragma: export
#include "world/scalar.h"        // IWYU pragma: export
#include "world/sensor_field.h"  // IWYU pragma: export
