// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit given a seed, independent of
// the standard library implementation, so we ship our own xoshiro256**
// generator (Blackman & Vigna) seeded via splitmix64, plus the handful of
// distributions the library needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.h"

namespace dde {

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can also feed standard
/// distributions when exact reproducibility across platforms is not needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    DDE_CHECK(n > 0, "Rng::below(0) divides by zero");
    // Lemire's nearly-divisionless bounded rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = -n % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    DDE_CHECK(lo <= hi, "Rng::between: lo must not exceed hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean. Precondition: mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept {
    DDE_CHECK(mean > 0, "Rng::exponential: mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal deviate (Box–Muller; one fresh pair per two calls).
  [[nodiscard]] double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTau = 6.28318530717958647692;
    spare_ = r * std::sin(kTau * u2);
    have_spare_ = true;
    return r * std::cos(kTau * u2);
  }

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Pick a uniformly random element. Precondition: !v.empty().
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) noexcept {
    DDE_CHECK(!v.empty(), "Rng::pick: cannot pick from an empty vector");
    return v[below(v.size())];
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace dde
