// Annotated synchronization primitives for the surfaces PDES will share.
//
// libstdc++'s std::mutex carries no clang capability attributes, so code
// locking it is invisible to -Wthread-safety. Mutex wraps std::mutex with
// the annotations (zero overhead: every method is a forwarding inline), and
// MutexLock is the RAII guard the analysis can follow. Mutex satisfies
// BasicLockable, so std::condition_variable_any waits on it directly.
//
// SingleOwner is the other ownership story: state that is never locked but
// confined to one owning thread at a time (per-shard simulators, metric
// registries, trace sinks — PR 4's design, and the PDES plan). It is a
// zero-size capability with no acquire; methods of the owning class mark
// their access with owner_.assert_held(), which tells the analysis "the
// caller's confinement makes this safe" while costing nothing. When the
// PDES refactor introduces real hand-off points, those asserts become the
// checklist of sites that must acquire the shard capability for real.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace dde::common {

/// std::mutex with clang capability annotations. Zero-overhead forwarding.
class DDE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DDE_ACQUIRE() { mu_.lock(); }
  void unlock() DDE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DDE_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII lock the thread-safety analysis understands.
class DDE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DDE_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() DDE_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Zero-size capability for thread-confined (not locked) state. Members
/// declared DDE_GUARDED_BY(owner_) may only be touched by code that holds
/// the capability; assert_held() claims it at zero cost on behalf of the
/// confining caller. See the header comment for when to use this instead
/// of a Mutex.
class DDE_CAPABILITY("owner") SingleOwner {
 public:
  void assert_held() const noexcept DDE_ASSERT_CAPABILITY() {}
};

}  // namespace dde::common
