// Slot pools and small inline containers for in-flight hot-path state.
//
// The city-scale push (docs/PERFORMANCE.md) replaced the DES and net
// layers' node-allocating containers with flat structures; this header
// supplies the same discipline one layer up, for athena's per-query
// state:
//
//   Pool<T>        — a chunked slot pool with a u32 freelist. Slots are
//                    pointer-stable (chunks never move), creation reuses
//                    the most recently freed slot (LIFO — deterministic),
//                    and destroy() runs the destructor eagerly so a slot
//                    never holds a stale live object.
//   SmallVec<T,N>  — a vector with N inline elements; spills wholesale to
//                    heap storage when it outgrows them. Contiguous in
//                    both modes (begin()/end() are plain pointers).
//   SmallMap<K,V,N>— insertion-ordered association list on SmallVec.
//                    Linear scans; intended for maps whose expected size
//                    is a handful (per-query outstanding/retry state).
//   SmallSet<T,N>  — insertion-ordered membership list on SmallVec.
//
// Determinism: none of these structures involve hashing; iteration order
// is insertion order (SmallVec/SmallMap/SmallSet) or explicit slot order
// (Pool), both pure functions of the operation history.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/contracts.h"

namespace dde {

/// Chunked object pool handing out u32 slot handles.
///
/// Storage grows in fixed-size chunks that are never relocated, so `T&`
/// references obtained from at() stay valid across later create() calls
/// (unlike a plain std::vector<T>). destroy() pushes the slot onto a
/// LIFO freelist; the next create() reuses it.
template <typename T, std::size_t kChunkSize = 64>
class Pool {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNullSlot = ~Slot{0};

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() { clear(); }

  /// Construct a T in a fresh or recycled slot and return its handle.
  template <typename... Args>
  [[nodiscard]] Slot create(Args&&... args) {
    Slot slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      DDE_CHECK(high_water_ < kNullSlot, "Pool slot space exhausted");
      slot = static_cast<Slot>(high_water_);
      ++high_water_;
      if (slot / kChunkSize >= chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      alive_.push_back(0);
    }
    ::new (address_of(slot)) T(std::forward<Args>(args)...);
    alive_[slot] = 1;
    ++live_;
    return slot;
  }

  /// Destroy the object in `slot` and recycle the slot.
  void destroy(Slot slot) {
    DDE_CHECK(is_live(slot), "Pool::destroy on a dead or out-of-range slot");
    at(slot).~T();
    alive_[slot] = 0;
    --live_;
    free_.push_back(slot);
  }

  [[nodiscard]] T& at(Slot slot) {
    DDE_ASSERT(is_live(slot));
    return *std::launder(reinterpret_cast<T*>(address_of(slot)));
  }
  [[nodiscard]] const T& at(Slot slot) const {
    DDE_ASSERT(is_live(slot));
    return *std::launder(reinterpret_cast<const T*>(
        const_cast<Pool*>(this)->address_of(slot)));
  }

  [[nodiscard]] bool is_live(Slot slot) const {
    return slot < high_water_ && alive_[slot] != 0;
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkSize; }

  /// Destroy every live object and reset the pool to empty.
  /// Chunk storage is retained for reuse.
  void clear() {
    for (std::size_t s = 0; s < high_water_; ++s) {
      auto slot = static_cast<Slot>(s);
      if (is_live(slot)) {
        at(slot).~T();
        alive_[slot] = 0;
      }
    }
    free_.clear();
    high_water_ = 0;
    live_ = 0;
    alive_.clear();
  }

 private:
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunkSize];
  };

  [[nodiscard]] void* address_of(Slot slot) {
    return chunks_[slot / kChunkSize]->bytes + sizeof(T) * (slot % kChunkSize);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<unsigned char> alive_;  // indexed by slot, 1 = constructed
  std::vector<Slot> free_;
  std::size_t high_water_ = 0;
  std::size_t live_ = 0;
};

/// Vector with N inline elements and wholesale spill to heap storage.
///
/// While size() <= N the elements live in the inline array; the first
/// push past N moves everything into a std::vector and the inline array
/// is abandoned. Either way storage is contiguous, so begin()/end() are
/// plain pointers and the standard algorithms apply. Requires T to be
/// default-constructible and movable.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(N >= 1, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  void push_back(T value) {
    if (!spilled()) {
      if (size_ < N) {
        inline_[size_] = std::move(value);
        ++size_;
        return;
      }
      spill();
    }
    heap_.push_back(std::move(value));
    ++size_;
  }

  void pop_back() {
    DDE_CHECK(size_ > 0, "SmallVec::pop_back on empty");
    --size_;
    if (spilled()) {
      heap_.pop_back();
    } else {
      inline_[size_] = T{};
    }
  }

  [[nodiscard]] T* data() { return spilled() ? heap_.data() : inline_.data(); }
  [[nodiscard]] const T* data() const {
    return spilled() ? heap_.data() : inline_.data();
  }

  [[nodiscard]] iterator begin() { return data(); }
  [[nodiscard]] iterator end() { return data() + size_; }
  [[nodiscard]] const_iterator begin() const { return data(); }
  [[nodiscard]] const_iterator end() const { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    DDE_ASSERT(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    DDE_ASSERT(i < size_);
    return data()[i];
  }

  [[nodiscard]] T& back() {
    DDE_CHECK(size_ > 0, "SmallVec::back on empty");
    return data()[size_ - 1];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    heap_.clear();
    for (std::size_t i = 0; i < (size_ < N ? size_ : N); ++i) inline_[i] = T{};
    size_ = 0;
    spilled_ = false;
  }

  /// Remove every element matching `pred`, preserving relative order.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    T* first = data();
    T* last = first + size_;
    T* keep = first;
    for (T* it = first; it != last; ++it) {
      if (!pred(*it)) {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    auto removed = static_cast<std::size_t>(last - keep);
    for (std::size_t i = 0; i < removed; ++i) pop_back();
    return removed;
  }

  /// Remove the element at index `i`, preserving relative order.
  void erase_at(std::size_t i) {
    DDE_CHECK(i < size_, "SmallVec::erase_at out of range");
    T* d = data();
    for (std::size_t j = i + 1; j < size_; ++j) d[j - 1] = std::move(d[j]);
    pop_back();
  }

 private:
  [[nodiscard]] bool spilled() const { return spilled_; }

  void spill() {
    heap_.reserve(2 * N);
    for (std::size_t i = 0; i < N; ++i) {
      heap_.push_back(std::move(inline_[i]));
      inline_[i] = T{};
    }
    spilled_ = true;
  }

  std::array<T, N> inline_{};
  std::vector<T> heap_;
  std::size_t size_ = 0;
  bool spilled_ = false;
};

/// Insertion-ordered flat map with linear-scan lookup.
/// For per-query maps whose expected population is a handful of entries.
template <typename K, typename V, std::size_t N>
class SmallMap {
 public:
  struct Item {
    K key{};
    V value{};
  };
  using const_iterator = const Item*;

  [[nodiscard]] V* find(const K& key) {
    for (Item& item : items_) {
      if (item.key == key) return &item.value;
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    for (const Item& item : items_) {
      if (item.key == key) return &item.value;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(const K& key) const { return find(key) != nullptr; }

  /// operator[] equivalent: existing value or freshly default-constructed.
  [[nodiscard]] V& ref(const K& key) {
    if (V* v = find(key)) return *v;
    items_.push_back(Item{key, V{}});
    return items_.back().value;
  }

  void set(const K& key, V value) { ref(key) = std::move(value); }

  bool erase(const K& key) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].key == key) {
        items_.erase_at(i);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

 private:
  SmallVec<Item, N> items_;
};

/// Insertion-ordered flat set with linear-scan lookup.
template <typename T, std::size_t N>
class SmallSet {
 public:
  using const_iterator = const T*;

  /// Returns true if inserted, false if already present.
  bool insert(const T& value) {
    if (contains(value)) return false;
    items_.push_back(value);
    return true;
  }

  [[nodiscard]] bool contains(const T& value) const {
    for (const T& item : items_) {
      if (item == value) return true;
    }
    return false;
  }

  bool erase(const T& value) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (items_[i] == value) {
        items_.erase_at(i);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

 private:
  SmallVec<T, N> items_;
};

}  // namespace dde
