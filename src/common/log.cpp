#include "common/log.h"

#include <iostream>

namespace dde {

std::atomic<LogLevel>& log_threshold() noexcept {
  static std::atomic<LogLevel> level{LogLevel::kOff};
  return level;
}

void log_line(LogLevel level, SimTime now, std::string_view msg) {
  if (!log_enabled(level)) return;
  static constexpr std::string_view names[] = {"TRACE", "DEBUG", "INFO",
                                               "WARN", "ERROR"};
  const auto idx = static_cast<std::size_t>(level);
  std::clog << "[" << (idx < 5 ? names[idx] : "?") << " t=" << now << "] "
            << msg << '\n';
}

}  // namespace dde
