// Minimal leveled logging for simulations.
//
// Logging is global and off by default (simulation harnesses run millions of
// events); tests and examples turn it on selectively.
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/sim_time.h"

namespace dde {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are discarded. Atomic so the
/// enabled check is race-free when replication trials run under
/// DDE_BENCH_JOBS>1 (harnesses set it once before fan-out; `=` still
/// works through std::atomic's assignment operator).
std::atomic<LogLevel>& log_threshold() noexcept;

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(log_threshold().load(std::memory_order_relaxed));
}

/// Emit a log line tagged with the simulated time.
void log_line(LogLevel level, SimTime now, std::string_view msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, SimTime now, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, now, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(SimTime now, const Args&... args) {
  detail::log_fmt(LogLevel::kTrace, now, args...);
}
template <typename... Args>
void log_debug(SimTime now, const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, now, args...);
}
template <typename... Args>
void log_info(SimTime now, const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, now, args...);
}
template <typename... Args>
void log_warn(SimTime now, const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, now, args...);
}
template <typename... Args>
void log_error(SimTime now, const Args&... args) {
  detail::log_fmt(LogLevel::kError, now, args...);
}

}  // namespace dde
