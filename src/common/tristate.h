// Three-valued (Kleene) logic.
//
// Label values in a decision-driven system are true, false, or unknown
// (not yet evidenced / expired). Decision expressions are evaluated under
// Kleene semantics: an AND with a false term is false even if other terms
// are unknown; an OR with a true term is true likewise. This is precisely
// what enables short-circuit savings.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace dde {

enum class Tristate : std::uint8_t {
  kFalse = 0,
  kTrue = 1,
  kUnknown = 2,
};

[[nodiscard]] constexpr Tristate to_tristate(bool b) noexcept {
  return b ? Tristate::kTrue : Tristate::kFalse;
}

[[nodiscard]] constexpr bool is_known(Tristate t) noexcept {
  return t != Tristate::kUnknown;
}

/// Kleene negation.
[[nodiscard]] constexpr Tristate operator!(Tristate t) noexcept {
  switch (t) {
    case Tristate::kFalse: return Tristate::kTrue;
    case Tristate::kTrue: return Tristate::kFalse;
    case Tristate::kUnknown: return Tristate::kUnknown;
  }
  return Tristate::kUnknown;
}

/// Kleene conjunction: false dominates, then unknown.
[[nodiscard]] constexpr Tristate operator&&(Tristate a, Tristate b) noexcept {
  if (a == Tristate::kFalse || b == Tristate::kFalse) return Tristate::kFalse;
  if (a == Tristate::kUnknown || b == Tristate::kUnknown) return Tristate::kUnknown;
  return Tristate::kTrue;
}

/// Kleene disjunction: true dominates, then unknown.
[[nodiscard]] constexpr Tristate operator||(Tristate a, Tristate b) noexcept {
  if (a == Tristate::kTrue || b == Tristate::kTrue) return Tristate::kTrue;
  if (a == Tristate::kUnknown || b == Tristate::kUnknown) return Tristate::kUnknown;
  return Tristate::kFalse;
}

[[nodiscard]] constexpr std::string_view to_string(Tristate t) noexcept {
  switch (t) {
    case Tristate::kFalse: return "false";
    case Tristate::kTrue: return "true";
    case Tristate::kUnknown: return "unknown";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, Tristate t) {
  return os << to_string(t);
}

}  // namespace dde
