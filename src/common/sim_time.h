// Simulated time. All timestamps and durations in the library are expressed
// as SimTime — an integral count of microseconds since simulation start.
//
// Integral time keeps the discrete-event simulation deterministic across
// platforms (no floating-point event reordering).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace dde {

/// A point in simulated time or a duration, in microseconds.
class SimTime {
 public:
  using rep = std::int64_t;

  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(rep micros) noexcept : micros_(micros) {}

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{std::numeric_limits<rep>::max()};
  }
  [[nodiscard]] static constexpr SimTime micros(rep us) noexcept { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime millis(rep ms) noexcept { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept {
    return SimTime{static_cast<rep>(s * 1e6)};
  }

  [[nodiscard]] constexpr rep count() const noexcept { return micros_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }
  [[nodiscard]] constexpr double to_millis() const noexcept {
    return static_cast<double>(micros_) / 1e3;
  }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime& operator+=(SimTime other) noexcept {
    micros_ += other.micros_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    micros_ -= other.micros_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.micros_ + b.micros_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.micros_ - b.micros_};
  }
  friend constexpr SimTime operator*(SimTime a, rep k) noexcept {
    return SimTime{a.micros_ * k};
  }
  friend constexpr SimTime operator*(rep k, SimTime a) noexcept { return a * k; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.to_seconds() << "s";
  }

 private:
  rep micros_ = 0;
};

}  // namespace dde

namespace std {
template <>
struct hash<dde::SimTime> {
  size_t operator()(const dde::SimTime& t) const noexcept {
    return std::hash<dde::SimTime::rep>{}(t.count());
  }
};
}  // namespace std
