// Clang -Wthread-safety capability annotations, as portable no-op macros.
//
// The PDES refactor (ROADMAP: deterministic parallel simulation of one run)
// will touch simulator/net/athena state from multiple harness::ThreadPool
// workers. These macros let the surfaces that will be shared declare their
// locking contract *now*, so clang's static thread-safety analysis — run by
// the CI lint job with -Wthread-safety -Werror — checks every new access
// against it. Under GCC (the bench container's toolchain) every macro
// expands to nothing: zero code, zero ABI difference.
//
// The vocabulary is the standard clang one (see "Thread Safety Analysis" in
// the clang docs; the shim follows the documented reference macros):
//
//   DDE_CAPABILITY(name)      this class IS a lock-like capability
//   DDE_SCOPED_CAPABILITY     RAII object that acquires in its constructor
//                             and releases in its destructor
//   DDE_GUARDED_BY(mu)        member may only be touched while holding mu
//   DDE_PT_GUARDED_BY(mu)     pointee may only be touched while holding mu
//   DDE_REQUIRES(mu...)       caller must already hold mu
//   DDE_ACQUIRE(mu...)        function acquires mu and does not release it
//   DDE_RELEASE(mu...)        function releases mu
//   DDE_TRY_ACQUIRE(ok, mu)   acquires mu iff the return value is `ok`
//   DDE_EXCLUDES(mu...)       caller must NOT hold mu (deadlock guard)
//   DDE_ASSERT_CAPABILITY(mu) runtime claim that mu is held (no-op body);
//                             the sanctioned anchor for single-owner state
//                             until real acquire points exist (see
//                             common/mutex.h SingleOwner)
//   DDE_RETURN_CAPABILITY(mu) function returns a reference to mu
//   DDE_NO_THREAD_SAFETY_ANALYSIS  opt a function out (audited uses only)
//
// docs/STATIC_ANALYSIS.md §4 records which surfaces carry annotations and
// why; tools/dde_lint's mutable-global pass enforces that no *unannotated*
// shared state exists for these to miss.
#pragma once

#if defined(__clang__)
#define DDE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DDE_THREAD_ANNOTATION__(x)  // no-op under GCC and others
#endif

#define DDE_CAPABILITY(x) DDE_THREAD_ANNOTATION__(capability(x))
#define DDE_SCOPED_CAPABILITY DDE_THREAD_ANNOTATION__(scoped_lockable)
#define DDE_GUARDED_BY(x) DDE_THREAD_ANNOTATION__(guarded_by(x))
#define DDE_PT_GUARDED_BY(x) DDE_THREAD_ANNOTATION__(pt_guarded_by(x))
#define DDE_REQUIRES(...) \
  DDE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define DDE_ACQUIRE(...) \
  DDE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define DDE_RELEASE(...) \
  DDE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define DDE_TRY_ACQUIRE(...) \
  DDE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define DDE_EXCLUDES(...) DDE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define DDE_ASSERT_CAPABILITY(...) \
  DDE_THREAD_ANNOTATION__(assert_capability(__VA_ARGS__))
#define DDE_RETURN_CAPABILITY(x) DDE_THREAD_ANNOTATION__(lock_returned(x))
#define DDE_NO_THREAD_SAFETY_ANALYSIS \
  DDE_THREAD_ANNOTATION__(no_thread_safety_analysis)
