#include "common/contracts.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <utility>

namespace dde::contracts {

void fail(const char* file, int line, const char* cond,
          const char* msg) noexcept {
  std::fprintf(stderr, "%s:%d: contract failed: %s (%s)\n", file, line, cond,
               msg);
  std::fflush(stderr);
  std::abort();
}

namespace {
std::mutex& note_mutex() {
  static std::mutex m;
  return m;
}
std::set<std::pair<std::string, int>>& noted_sites() {
  static std::set<std::pair<std::string, int>> s;
  return s;
}
long& note_count() {
  static long n = 0;
  return n;
}
}  // namespace

void clamp_note(const char* file, int line, const char* cond,
                const char* msg) noexcept {
  const std::lock_guard<std::mutex> lock(note_mutex());
  if (!noted_sites().emplace(file, line).second) return;  // already logged
  ++note_count();
  std::fprintf(stderr, "%s:%d: contract clamped: %s (%s)\n", file, line, cond,
               msg);
  std::fflush(stderr);
}

long clamp_notes_emitted() noexcept {
  const std::lock_guard<std::mutex> lock(note_mutex());
  return note_count();
}

}  // namespace dde::contracts
