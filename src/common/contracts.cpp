#include "common/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace dde::contracts {

void fail(const char* file, int line, const char* cond,
          const char* msg) noexcept {
  std::fprintf(stderr, "%s:%d: contract failed: %s (%s)\n", file, line, cond,
               msg);
  std::fflush(stderr);
  std::abort();
}

namespace {
// Process-wide notice count; the only shared state left here. The per-site
// once-gating moved into DDE_CLAMP_OR's own atomic flag, so this needs no
// mutex — just an atomic counter.
std::atomic<long> note_count{0};
}  // namespace

void clamp_note(const char* file, int line, const char* cond,
                const char* msg) noexcept {
  note_count.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "%s:%d: contract clamped: %s (%s)\n", file, line, cond,
               msg);
  std::fflush(stderr);
}

long clamp_notes_emitted() noexcept {
  return note_count.load(std::memory_order_relaxed);
}

}  // namespace dde::contracts
