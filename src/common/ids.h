// Strong identifier types used across the decision-driven execution library.
//
// Each id is a distinct C++ type so that a NodeId cannot be accidentally
// passed where a QueryId is expected (Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace dde {

/// CRTP base for strongly-typed integer identifiers.
///
/// Provides ordering, equality, hashing support and streaming. The derived
/// type is only a tag; all ids share the same underlying representation.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  /// Sentinel for "no id". Default-constructed ids are invalid.
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(underlying_type value) noexcept : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  constexpr auto operator<=>(const StrongId&) const noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, const StrongId& id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

struct NodeIdTag {};
struct LinkIdTag {};
struct QueryIdTag {};
struct ObjectIdTag {};
struct LabelIdTag {};
struct SourceIdTag {};
struct AnnotatorIdTag {};
struct SegmentIdTag {};
struct MessageIdTag {};

/// Identifies a node in the simulated network.
using NodeId = StrongId<NodeIdTag>;
/// Identifies a directed link in the simulated network.
using LinkId = StrongId<LinkIdTag>;
/// Identifies a decision query.
using QueryId = StrongId<QueryIdTag>;
/// Identifies an evidence (data) object.
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies a label (named Boolean variable over world state).
using LabelId = StrongId<LabelIdTag>;
/// Identifies a data source (sensor).
using SourceId = StrongId<SourceIdTag>;
/// Identifies an annotator (predicate evaluator).
using AnnotatorId = StrongId<AnnotatorIdTag>;
/// Identifies a road segment in the world model.
using SegmentId = StrongId<SegmentIdTag>;
/// Identifies a network message.
using MessageId = StrongId<MessageIdTag>;

}  // namespace dde

namespace std {
template <typename Tag>
struct hash<dde::StrongId<Tag>> {
  size_t operator()(const dde::StrongId<Tag>& id) const noexcept {
    return std::hash<typename dde::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
