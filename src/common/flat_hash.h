// Flat open-addressing hash map from uint64 keys to small values — the
// determinism-preserving facade the hot-path tables sit behind.
//
// Why not std::unordered_map: tree-wide policy (docs/STATIC_ANALYSIS.md)
// bans iteration over unordered containers because their order leaks the
// allocator; and the node-based layout costs an allocation per entry. This
// table is a single contiguous array, linear probing, splitmix64-mixed —
// and its original clients (the dedup tables) use NO iteration at all:
// lookups, inserts, and erases only, with any ordered walk owned by a
// companion structure (e.g. net::DedupTable's expiry heap). The athena
// tranche added two carefully bounded iteration forms, both deterministic
// by construction because slot layout is a pure function of the operation
// history (constant hash, power-of-two capacity schedule, deterministic
// rebuild):
//
//   * for_each / erase_if — slot-index order. Legitimate only for
//     commutative folds and independent per-entry updates; anything whose
//     output depends on visit order must go through sorted_keys().
//   * sorted_keys() — ascending key order, for trajectory-pinned walks.
//
// Erasure uses tombstone control bytes; a rebuild (same size, entries
// re-laid in slot-index order — deterministic) reclaims them once they
// would degrade probing. The table grows by doubling if the caller exceeds
// the expected capacity, so it is never wrong, only slower than promised.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.h"

namespace dde {

template <typename V>
class FlatU64Map {
 public:
  /// Size the table for about `expected` live keys (load factor <= 0.5 at
  /// that size, so probes stay short).
  explicit FlatU64Map(std::size_t expected = 16) { rebuild(table_for(expected)); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr.
  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) return nullptr;
      if (c == Ctrl::kFull && keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatU64Map*>(this)->find(key);
  }

  /// Insert a key that is NOT present (checked): the dedup-table callers
  /// always probe first, so a double insert is a logic error upstream.
  void insert(std::uint64_t key, V value) {
    if ((size_ + tombstones_ + 1) * 2 > ctrl_.size()) {
      rebuild(size_ * 2 + tombstones_ > ctrl_.size() / 2 ? ctrl_.size() * 2
                                                         : ctrl_.size());
    }
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c != Ctrl::kFull) {
        if (c == Ctrl::kTombstone) --tombstones_;
        ctrl_[i] = Ctrl::kFull;
        keys_[i] = key;
        values_[i] = std::move(value);
        ++size_;
        return;
      }
      DDE_CHECK(keys_[i] != key, "FlatU64Map: duplicate insert");
      i = (i + 1) & mask_;
    }
  }

  /// Remove `key` if present. Returns whether it was.
  bool erase(std::uint64_t key) noexcept {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) return false;
      if (c == Ctrl::kFull && keys_[i] == key) {
        ctrl_[i] = Ctrl::kTombstone;
        values_[i] = V{};
        --size_;
        ++tombstones_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Insert only if `key` is absent. Returns whether it inserted.
  bool insert_if_absent(std::uint64_t key, V value) {
    if (find(key) != nullptr) return false;
    insert(key, std::move(value));
    return true;
  }

  /// Value for `key`, default-constructing (and inserting) it if absent —
  /// the operator[] equivalent. The returned reference is invalidated by
  /// any later insert (the table may rebuild).
  [[nodiscard]] V& find_or_insert(std::uint64_t key) {
    if (V* v = find(key)) return *v;
    insert(key, V{});
    return *find(key);
  }

  /// Drop every entry, keeping the current capacity.
  void clear() noexcept {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) values_[i] = V{};
      ctrl_[i] = Ctrl::kEmpty;
    }
    size_ = 0;
    tombstones_ = 0;
  }

  /// Visit every (key, value) in slot-index order. Slot order is
  /// deterministic but NOT meaningful: use only for commutative folds or
  /// independent per-entry updates. `fn` must not insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) {
        fn(keys_[i], static_cast<const V&>(values_[i]));
      }
    }
  }

  /// Erase every entry for which `pred(key, value)` holds; visit order is
  /// slot order (each decision must be independent of the others).
  /// Returns the number erased.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull && pred(keys_[i], values_[i])) {
        ctrl_[i] = Ctrl::kTombstone;
        values_[i] = V{};
        --size_;
        ++tombstones_;
        ++erased;
      }
    }
    return erased;
  }

  /// All live keys in ascending order — the facade for any walk whose
  /// visit order is observable (trajectory-pinned sites).
  [[nodiscard]] std::vector<std::uint64_t> sorted_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(size_);
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) keys.push_back(keys_[i]);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  enum class Ctrl : std::uint8_t { kEmpty, kFull, kTombstone };

  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    // splitmix64 finalizer: full-avalanche, constant, platform-independent.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::size_t table_for(std::size_t expected) noexcept {
    std::size_t n = 16;
    while (n < expected * 2) n *= 2;
    return n;
  }

  void rebuild(std::size_t new_size) {
    std::vector<Ctrl> old_ctrl = std::move(ctrl_);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    ctrl_.assign(new_size, Ctrl::kEmpty);
    keys_.assign(new_size, 0);
    values_.assign(new_size, V{});
    mask_ = new_size - 1;
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == Ctrl::kFull) {
        insert(old_keys[i], std::move(old_values[i]));
      }
    }
  }

  std::vector<Ctrl> ctrl_;
  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

/// Flat open-addressing set of uint64 keys: FlatU64Map's probing scheme
/// without the value array. Same determinism contract — contains/insert/
/// erase only, plus slot-order for_each (commutative folds) and
/// sorted_keys() for order-sensitive walks.
class FlatU64Set {
 public:
  explicit FlatU64Set(std::size_t expected = 16) { rebuild(table_for(expected)); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) return false;
      if (c == Ctrl::kFull && keys_[i] == key) return true;
      i = (i + 1) & mask_;
    }
  }

  /// Insert `key` if absent. Returns whether it inserted.
  bool insert(std::uint64_t key) {
    if (contains(key)) return false;
    if ((size_ + tombstones_ + 1) * 2 > ctrl_.size()) {
      rebuild(size_ * 2 + tombstones_ > ctrl_.size() / 2 ? ctrl_.size() * 2
                                                         : ctrl_.size());
    }
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c != Ctrl::kFull) {
        if (c == Ctrl::kTombstone) --tombstones_;
        ctrl_[i] = Ctrl::kFull;
        keys_[i] = key;
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Remove `key` if present. Returns whether it was.
  bool erase(std::uint64_t key) noexcept {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) return false;
      if (c == Ctrl::kFull && keys_[i] == key) {
        ctrl_[i] = Ctrl::kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Drop every key, keeping the current capacity.
  void clear() noexcept {
    std::fill(ctrl_.begin(), ctrl_.end(), Ctrl::kEmpty);
    size_ = 0;
    tombstones_ = 0;
  }

  /// Visit every key in slot-index order (commutative folds only).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) fn(keys_[i]);
    }
  }

  [[nodiscard]] std::vector<std::uint64_t> sorted_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(size_);
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == Ctrl::kFull) keys.push_back(keys_[i]);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  enum class Ctrl : std::uint8_t { kEmpty, kFull, kTombstone };

  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::size_t table_for(std::size_t expected) noexcept {
    std::size_t n = 16;
    while (n < expected * 2) n *= 2;
    return n;
  }

  void rebuild(std::size_t new_size) {
    std::vector<Ctrl> old_ctrl = std::move(ctrl_);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    ctrl_.assign(new_size, Ctrl::kEmpty);
    keys_.assign(new_size, 0);
    mask_ = new_size - 1;
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == Ctrl::kFull) insert(old_keys[i]);
    }
  }

  std::vector<Ctrl> ctrl_;
  std::vector<std::uint64_t> keys_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace dde
