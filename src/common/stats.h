// Small statistics helpers used by the experiment harnesses.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dde {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Half-width of the ~95% confidence interval for the mean.
  [[nodiscard]] double ci95() const noexcept {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (nearest-rank on a copy; q in [0,1]).
[[nodiscard]] inline double percentile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

}  // namespace dde
