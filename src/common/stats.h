// Small statistics helpers used by the experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dde {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Half-width of the ~95% confidence interval for the mean.
  [[nodiscard]] double ci95() const noexcept {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

  /// Fold `other` into this accumulator (Chan et al.'s parallel Welford
  /// update): the result summarizes the concatenation of both streams.
  /// Mean/variance agree with the equivalent sequential add() stream to
  /// floating-point merge error (~1 ulp per merge); count/sum/min/max are
  /// exact. A single-sample `other` folds via add(), so merging one-sample
  /// accumulators in stream order is bit-identical to sequential add().
  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    if (other.n_ == 1) {
      add(other.mean_);
      return;
    }
    const auto n = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / n;
    mean_ += delta * static_cast<double>(other.n_) / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set, nearest-rank convention (R-1 / NIST): the
/// smallest sorted sample x[k] with k = ceil(q * n), clamped so q = 0 maps
/// to the minimum and q = 1 to the maximum. Always returns an actual sample
/// (no interpolation). Returns 0.0 on an empty set; q is clamped to [0,1].
[[nodiscard]] inline double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::min(rank == 0 ? 0 : rank - 1, xs.size() - 1)];
}

}  // namespace dde
