// Contract macros: the always-on replacement for bare assert().
//
// PR 4 fixed three release-build bugs that were all the same disease:
// invariants guarded by assert() that vanish under -DNDEBUG (DES clock
// rewind, OOB percentile, null-rng segfault). This header makes the intent
// of every invariant explicit and machine-checkable — tools/dde_lint fails
// CI on any bare assert( left in src/.
//
//   DDE_ASSERT(cond)             debug-only; compiles out under -DNDEBUG.
//                                For internal invariants whose violation is a
//                                programming error and whose check is too hot
//                                to pay for in release.
//   DDE_CHECK(cond, msg)         always-on; aborts with file:line + msg.
//                                For cheap invariants whose violation would
//                                silently corrupt results (index bounds,
//                                time monotonicity, byte accounting).
//   DDE_CLAMP_OR(cond, fb, msg)  always-on; if cond is false, logs once per
//                                call site (stderr) and executes `fb` — the
//                                documented fallback. `fb` may be any
//                                statement, including `return x`.
//   DDE_INVARIANT(cond, msg)     expensive consistency sweep; enabled only
//                                when built with -DDDE_INVARIANTS (CMake
//                                option DDE_INVARIANTS=ON, run by CI).
//
// See docs/STATIC_ANALYSIS.md for the decision table.
#pragma once

#include <atomic>

namespace dde::contracts {

/// Print "file:line: contract failed: cond (msg)" to stderr and abort().
[[noreturn]] void fail(const char* file, int line, const char* cond,
                       const char* msg) noexcept;

/// Print the clamp notice for a site. The once-per-site gating lives in the
/// DDE_CLAMP_OR macro itself (a per-site std::atomic<bool>): exactly one
/// caller wins the exchange and reaches this function per site, at any
/// DDE_BENCH_JOBS. Before the atomics, the gate was a mutex-guarded
/// (file,line) set — correct but a cross-worker serialization point on
/// every violation; the per-site flag is lock-free and wait-free. The
/// jobs=4 clamp test in tests/test_contracts.cpp pins the once-only
/// semantics and runs under the CI TSan job.
void clamp_note(const char* file, int line, const char* cond,
                const char* msg) noexcept;

/// Number of DDE_CLAMP_OR notices emitted so far (for tests).
long clamp_notes_emitted() noexcept;

}  // namespace dde::contracts

/// Always-on check: aborts on violation in every build type.
#define DDE_CHECK(cond, msg)                                        \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::dde::contracts::fail(__FILE__, __LINE__, #cond, (msg));     \
    }                                                               \
  } while (0)

/// Always-on clamp: on violation, log once per site and run the fallback.
/// The fallback executes on *every* violation; only the log is one-shot.
/// The fallback may be any statement including `return x`, but NOT `break`
/// or `continue` — those would target the macro's internal do/while, not
/// the enclosing loop or switch.
///
/// The once-per-site flag is a function-local std::atomic<bool>: safe (and
/// exactly-once) when the site runs concurrently under DDE_BENCH_JOBS>1,
/// at zero cost on the non-violating path. A site inside a template fires
/// once per instantiation.
#define DDE_CLAMP_OR(cond, fallback, msg)                                 \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      static std::atomic<bool> dde_clamp_noted_{false};                   \
      if (!dde_clamp_noted_.exchange(true, std::memory_order_acq_rel)) {  \
        ::dde::contracts::clamp_note(__FILE__, __LINE__, #cond, (msg));   \
      }                                                                   \
      fallback;                                                           \
    }                                                                     \
  } while (0)

/// Debug-only assertion; compiles out under -DNDEBUG.
#ifdef NDEBUG
#define DDE_ASSERT(cond) ((void)0)
#else
#define DDE_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::dde::contracts::fail(__FILE__, __LINE__, #cond, "debug assertion"); \
    }                                                                      \
  } while (0)
#endif

/// Expensive invariant sweep; compiled in only with -DDDE_INVARIANTS.
#ifdef DDE_INVARIANTS
#define DDE_INVARIANT(cond, msg) DDE_CHECK(cond, msg)
#else
#define DDE_INVARIANT(cond, msg) ((void)0)
#endif
