// Freshness-aware caches (Sec. VI-B, VI-D).
//
// Every Athena node caches evidence objects and label values that pass
// through it. Entries carry an absolute expiry; a lookup at time t only
// returns entries that are still fresh at t (and, optionally, that will
// still be fresh at a caller-supplied future decision time). Capacity is
// bounded; expired entries are pruned on insert, and capacity pressure
// evicts the least-recently-used live entry.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>

#include "common/contracts.h"
#include "common/sim_time.h"

namespace dde::cache {

/// Cache statistics. Removal causes are disjoint: `evictions` counts only
/// capacity-pressure LRU drops, `expired_drops` only TTL expiries, and
/// `flushed` only clear() wipes — summing them gives total removals
/// (explicit erase_key/erase_if invalidations excluded).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_rejects = 0;  ///< present but not fresh enough
  std::uint64_t insertions = 0;     ///< new entries only (not refreshes)
  std::uint64_t refreshes = 0;      ///< in-place overwrites of a live key
  std::uint64_t evictions = 0;      ///< capacity-pressure LRU drops only
  std::uint64_t expired_drops = 0;  ///< entries removed because their TTL ran out
  std::uint64_t flushed = 0;        ///< entries removed by clear()

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses + stale_rejects;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A bounded TTL + LRU cache.
///
/// K must be hashable and equality-comparable; V is stored by value.
template <typename K, typename V>
class TtlCache {
 public:
  /// `capacity` = max number of entries (0 disables caching entirely).
  explicit TtlCache(std::size_t capacity) : capacity_(capacity) {}

  /// Insert or refresh an entry that expires at `expires_at`.
  void put(const K& key, V value, SimTime expires_at, SimTime now) {
    if (capacity_ == 0) return;
    prune(now);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      it->second.expires_at = expires_at;
      touch(it);
      ++stats_.refreshes;
      return;
    }
    if (map_.size() >= capacity_) evict_one(now);
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(value), expires_at, lru_.begin()});
    ++stats_.insertions;
    DDE_INVARIANT(consistent(), "TtlCache: map/LRU desync after put");
  }

  /// Lookup: returns the value if present and fresh through `fresh_until`
  /// (callers that need the entry at a future decision time pass that time;
  /// callers that need it now pass `now`). Updates LRU order and stats.
  [[nodiscard]] const V* get(const K& key, SimTime now,
                             SimTime fresh_until) {
    // A fresh_until in the past would let an entry that is already expired
    // at `now` slip through the staleness check below; clamp it forward.
    DDE_CLAMP_OR(fresh_until >= now, fresh_until = now,
                 "TtlCache::get: fresh_until precedes now; clamped to now");
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    if (it->second.expires_at <= fresh_until) {
      // Present but would be stale by the time it is needed.
      if (it->second.expires_at <= now) {
        erase(it);
        ++stats_.expired_drops;
        ++stats_.misses;
      } else {
        ++stats_.stale_rejects;
      }
      return nullptr;
    }
    touch(it);
    ++stats_.hits;
    return &it->second.value;
  }

  /// Peek without stats/LRU effects; freshness checked against `now` only.
  [[nodiscard]] const V* peek(const K& key, SimTime now) const {
    auto it = map_.find(key);
    if (it == map_.end() || it->second.expires_at <= now) return nullptr;
    return &it->second.value;
  }

  /// Remove an entry. Returns true if present.
  bool erase_key(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    erase(it);
    return true;
  }

  /// Remove every entry for which `pred(key, value)` returns true.
  template <typename Pred>
  void erase_if(Pred pred) {
    // lint: ordered-fold — independent per-entry predicate erase, no output.
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, it->second.value)) {
        lru_.erase(it->second.lru_pos);
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Drop all expired entries. Freshness drops, not capacity pressure:
  /// counted in expired_drops, never in evictions.
  void prune(SimTime now) {
    // lint: ordered-fold — independent per-entry expiry erase; the counter is
    // a commutative sum.
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.expires_at <= now) {
        lru_.erase(it->second.lru_pos);
        it = map_.erase(it);
        ++stats_.expired_drops;
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  void clear() {
    stats_.flushed += map_.size();
    map_.clear();
    lru_.clear();
  }

 private:
  struct Entry {
    V value;
    SimTime expires_at;
    typename std::list<K>::iterator lru_pos;
  };
  using Map = std::unordered_map<K, Entry>;

  void touch(typename Map::iterator it) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }

  void erase(typename Map::iterator it) {
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    DDE_INVARIANT(consistent(), "TtlCache: map/LRU desync after erase");
  }

  /// O(n) full consistency sweep: every LRU key resolves to a map entry
  /// whose lru_pos points back at it, and the sizes agree. Compiled in only
  /// under DDE_INVARIANTS (CI runs the suite with it ON).
  [[nodiscard]] bool consistent() const {
    if (lru_.size() != map_.size()) return false;
    for (auto pos = lru_.begin(); pos != lru_.end(); ++pos) {
      auto it = map_.find(*pos);
      if (it == map_.end() || it->second.lru_pos != pos) return false;
    }
    return true;
  }

  void evict_one(SimTime now) {
    // Capacity pressure on the per-object hot path: O(1), no full-map scan.
    // put() pruned all expired entries just before calling this, so the only
    // possible expired victim is one that expired at exactly `now` via a
    // concurrent path — check the LRU tail for it, otherwise the tail is
    // simply the least-recently-used live entry.
    if (lru_.empty()) return;
    auto it = map_.find(lru_.back());
    DDE_CHECK(it != map_.end(),
              "TtlCache: LRU tail key missing from map (accounting desync)");
    const bool expired = it->second.expires_at <= now;
    erase(it);
    if (expired) {
      ++stats_.expired_drops;
    } else {
      ++stats_.evictions;
    }
  }

  std::size_t capacity_;
  Map map_;
  std::list<K> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace dde::cache
