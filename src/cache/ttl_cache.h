// Freshness-aware caches (Sec. VI-B, VI-D).
//
// Every Athena node caches evidence objects and label values that pass
// through it. Entries carry an absolute expiry; a lookup at time t only
// returns entries that are still fresh at t (and, optionally, that will
// still be fresh at a caller-supplied future decision time). Capacity is
// bounded; expired entries are pruned on insert, and capacity pressure
// evicts the least-recently-used live entry.
//
// Layout (city-scale push, second tranche — docs/PERFORMANCE.md): the
// original std::unordered_map + std::list<K> paid two node allocations
// per entry and a full-map expiry sweep inside every put(). The cache is
// now flat:
//
//   * an open-addressed FlatU64Map index from the key's u64 code to a
//     slot in a contiguous slot vector (entries live in the slots, no
//     per-entry heap allocation once the vectors reach steady state);
//   * an intrusive doubly-linked LRU threaded through the slots
//     (prev/next indices, head = most recent);
//   * a lazy min-heap of (expires_at, slot, generation) triples so
//     prune() pops only entries that have actually expired instead of
//     sweeping the whole table. A slot's generation is bumped on every
//     refresh/erase, so stale heap nodes are recognized and discarded.
//
// Equivalence with the old container is exact: the same entries are
// removed at the same times with the same stat attribution (removal
// order within one prune() differs, but every observable — membership,
// LRU order, and the commutative stat sums — is identical). The old
// semantics are pinned by tests/test_ttl_cache.cpp.
//
// Pointer stability: values returned by get()/peek() are invalidated by
// the next mutating call (the slot vector may grow); callers must not
// hold them across a put(). (The previous container was stable here;
// all in-tree callers were audited to use-then-drop.)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/flat_hash.h"
#include "common/sim_time.h"

namespace dde::cache {

/// Cache statistics. Removal causes are disjoint: `evictions` counts only
/// capacity-pressure LRU drops, `expired_drops` only TTL expiries,
/// `flushed` only clear() wipes, and `invalidated` only explicit
/// erase_key()/erase_if() removals. Conservation identity (pinned in
/// tests/test_ttl_cache.cpp):
///   insertions == live + evictions + expired_drops + flushed + invalidated.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_rejects = 0;  ///< present but not fresh enough
  std::uint64_t insertions = 0;     ///< new entries only (not refreshes)
  std::uint64_t refreshes = 0;      ///< in-place overwrites of a live key
  std::uint64_t evictions = 0;      ///< capacity-pressure LRU drops only
  std::uint64_t expired_drops = 0;  ///< entries removed because their TTL ran out
  std::uint64_t flushed = 0;        ///< entries removed by clear()
  std::uint64_t invalidated = 0;    ///< entries removed by erase_key()/erase_if()

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses + stale_rejects;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A bounded TTL + LRU cache.
///
/// K must be equality-comparable and encode injectively to uint64: either
/// an integral type or a StrongId-style type exposing `.value()`. V is
/// stored by value.
template <typename K, typename V>
class TtlCache {
 public:
  /// `capacity` = max number of entries (0 disables caching entirely).
  explicit TtlCache(std::size_t capacity) : capacity_(capacity) {}

  /// Insert or refresh an entry that expires at `expires_at`.
  void put(const K& key, V value, SimTime expires_at, SimTime now) {
    if (capacity_ == 0) return;
    prune(now);
    if (const std::uint32_t* slot = index_.find(code(key))) {
      Slot& s = slots_[*slot];
      s.value = std::move(value);
      s.expires_at = expires_at;
      ++s.gen;
      push_expiry(*slot);
      move_to_front(*slot);
      ++stats_.refreshes;
      return;
    }
    if (live_ >= capacity_) evict_one(now);
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.key = key;
    s.value = std::move(value);
    s.expires_at = expires_at;
    ++s.gen;
    index_.insert(code(key), slot);
    link_front(slot);
    ++live_;
    push_expiry(slot);
    ++stats_.insertions;
    DDE_INVARIANT(consistent(), "TtlCache: index/LRU desync after put");
  }

  /// Lookup: returns the value if present and fresh through `fresh_until`
  /// (callers that need the entry at a future decision time pass that time;
  /// callers that need it now pass `now`). Updates LRU order and stats.
  [[nodiscard]] const V* get(const K& key, SimTime now,
                             SimTime fresh_until) {
    // A fresh_until in the past would let an entry that is already expired
    // at `now` slip through the staleness check below; clamp it forward.
    DDE_CLAMP_OR(fresh_until >= now, fresh_until = now,
                 "TtlCache::get: fresh_until precedes now; clamped to now");
    const std::uint32_t* slot = index_.find(code(key));
    if (slot == nullptr) {
      ++stats_.misses;
      return nullptr;
    }
    Slot& s = slots_[*slot];
    if (s.expires_at <= fresh_until) {
      // Present but would be stale by the time it is needed.
      if (s.expires_at <= now) {
        erase_slot(*slot);
        ++stats_.expired_drops;
        ++stats_.misses;
      } else {
        ++stats_.stale_rejects;
      }
      return nullptr;
    }
    move_to_front(*slot);
    ++stats_.hits;
    return &s.value;
  }

  /// Peek without stats/LRU effects; freshness checked against `now` only.
  [[nodiscard]] const V* peek(const K& key, SimTime now) const {
    const std::uint32_t* slot = index_.find(code(key));
    if (slot == nullptr || slots_[*slot].expires_at <= now) return nullptr;
    return &slots_[*slot].value;
  }

  /// Remove an entry (explicit invalidation, counted in `invalidated`).
  /// Returns true if present.
  bool erase_key(const K& key) {
    const std::uint32_t* slot = index_.find(code(key));
    if (slot == nullptr) return false;
    erase_slot(*slot);
    ++stats_.invalidated;
    return true;
  }

  /// Remove every entry for which `pred(key, value)` returns true; each
  /// removal counts in `invalidated`. Visit order is slot order, so the
  /// predicate must be independent per entry.
  template <typename Pred>
  void erase_if(Pred pred) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].in_lru && pred(slots_[i].key, slots_[i].value)) {
        erase_slot(i);
        ++stats_.invalidated;
      }
    }
  }

  /// Drop all expired entries. Freshness drops, not capacity pressure:
  /// counted in expired_drops, never in evictions. Amortized O(k log n)
  /// for k actual expiries — never a full-table sweep.
  void prune(SimTime now) {
    while (!heap_.empty() && heap_.front().at <= now) {
      const HeapItem item = heap_.front();
      pop_heap_front();
      Slot& s = slots_[item.slot];
      if (s.in_lru && s.gen == item.gen) {
        // Generation matched, so item.at is this entry's current expiry
        // and it has genuinely run out.
        erase_slot(item.slot);
        ++stats_.expired_drops;
      }
    }
    maybe_compact_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  void clear() {
    stats_.flushed += live_;
    index_.clear();
    slots_.clear();
    free_.clear();
    heap_.clear();
    head_ = tail_ = kNil;
    live_ = 0;
  }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Slot {
    K key{};
    V value{};
    SimTime expires_at{};
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t gen = 0;   ///< bumped on refresh/erase; tags heap items
    bool in_lru = false;     ///< slot holds a live entry
  };

  struct HeapItem {
    SimTime at;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Injective u64 code for the key (hash-free: the flat index mixes it).
  static std::uint64_t code(const K& key) noexcept {
    if constexpr (std::is_integral_v<K>) {
      return static_cast<std::uint64_t>(key);
    } else {
      return key.value();
    }
  }

  // ---- slot pool -----------------------------------------------------

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    DDE_CHECK(slots_.size() < kNil, "TtlCache: slot space exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Unlink + index-erase + recycle. Stat attribution is the caller's job.
  void erase_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    DDE_CHECK(s.in_lru, "TtlCache: erase of a dead slot (accounting desync)");
    index_.erase(code(s.key));
    unlink(slot);
    s.in_lru = false;
    ++s.gen;  // orphan any heap items still pointing here
    s.key = K{};
    s.value = V{};
    --live_;
    free_.push_back(slot);
    DDE_INVARIANT(consistent(), "TtlCache: index/LRU desync after erase");
  }

  // ---- intrusive LRU list (head = most recent) -----------------------

  void link_front(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.prev = kNil;
    s.next = head_;
    s.in_lru = true;
    if (head_ != kNil) slots_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNil) tail_ = slot;
  }

  void unlink(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (s.prev != kNil) slots_[s.prev].next = s.next; else head_ = s.next;
    if (s.next != kNil) slots_[s.next].prev = s.prev; else tail_ = s.prev;
    s.prev = s.next = kNil;
  }

  void move_to_front(std::uint32_t slot) {
    if (head_ == slot) return;
    unlink(slot);
    link_front(slot);
  }

  // ---- lazy expiry heap ----------------------------------------------

  static bool heap_after(const HeapItem& a, const HeapItem& b) noexcept {
    // std::push_heap keeps the max on top; reverse so the top is the
    // earliest expiry. Ties broken by (slot, gen) for a total order.
    if (a.at != b.at) return b.at < a.at;
    if (a.slot != b.slot) return b.slot < a.slot;
    return b.gen < a.gen;
  }

  void push_expiry(std::uint32_t slot) {
    heap_.push_back(HeapItem{slots_[slot].expires_at, slot, slots_[slot].gen});
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  }

  void pop_heap_front() {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }

  /// Refreshes and erases orphan their old heap items; rebuild the heap
  /// from the live entries once orphans dominate, so it cannot grow
  /// unboundedly under refresh churn.
  void maybe_compact_heap() {
    if (heap_.size() <= 4 * live_ + 64) return;
    heap_.clear();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].in_lru) {
        heap_.push_back(HeapItem{slots_[i].expires_at, i, slots_[i].gen});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), heap_after);
  }

  /// O(n) full consistency sweep: LRU links form a consistent chain over
  /// exactly the live slots, and each live key indexes back to its slot.
  /// Compiled in only under DDE_INVARIANTS (CI runs the suite with it ON).
  [[nodiscard]] bool consistent() const {
    std::size_t walked = 0;
    std::uint32_t prev = kNil;
    for (std::uint32_t at = head_; at != kNil; at = slots_[at].next) {
      if (!slots_[at].in_lru || slots_[at].prev != prev) return false;
      const std::uint32_t* slot = index_.find(code(slots_[at].key));
      if (slot == nullptr || *slot != at) return false;
      prev = at;
      if (++walked > live_) return false;
    }
    return walked == live_ && tail_ == prev && index_.size() == live_;
  }

  void evict_one(SimTime now) {
    // Capacity pressure on the per-object hot path: O(1), no full scan.
    // put() pruned all expired entries just before calling this, so the only
    // possible expired victim is one that expired at exactly `now` via a
    // concurrent path — check the LRU tail for it, otherwise the tail is
    // simply the least-recently-used live entry.
    if (tail_ == kNil) return;
    const bool expired = slots_[tail_].expires_at <= now;
    erase_slot(tail_);
    if (expired) {
      ++stats_.expired_drops;
    } else {
      ++stats_.evictions;
    }
  }

  std::size_t capacity_;
  FlatU64Map<std::uint32_t> index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapItem> heap_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t live_ = 0;
  CacheStats stats_;
};

}  // namespace dde::cache
