#include "pubsub/utility.h"

#include <algorithm>
#include <numeric>

namespace dde::pubsub {
namespace {

double max_similarity(const naming::Name& name,
                      std::span<const naming::Name> delivered) {
  double best = 0.0;
  for (const auto& d : delivered) best = std::max(best, name.similarity(d));
  return best;
}

Selection select_in_order(std::span<const Item> items,
                          std::span<const std::size_t> order,
                          std::uint64_t byte_budget) {
  Selection sel;
  std::vector<naming::Name> delivered;
  for (std::size_t i : order) {
    const Item& it = items[i];
    if (sel.bytes + it.bytes > byte_budget) continue;
    sel.utility += marginal_utility(it, delivered);
    sel.bytes += it.bytes;
    sel.order.push_back(i);
    delivered.push_back(it.name);
  }
  return sel;
}

}  // namespace

double marginal_utility(const Item& item,
                        std::span<const naming::Name> delivered) {
  if (item.critical) return item.base_utility;
  return item.base_utility * (1.0 - max_similarity(item.name, delivered));
}

double delivered_utility(std::span<const Item> items) {
  double total = 0.0;
  std::vector<naming::Name> delivered;
  for (const Item& it : items) {
    total += marginal_utility(it, delivered);
    delivered.push_back(it.name);
  }
  return total;
}

Selection infomax_triage(std::span<const Item> items,
                         std::uint64_t byte_budget) {
  Selection sel;
  std::vector<naming::Name> delivered;
  std::vector<bool> used(items.size(), false);

  // Critical items first, in input order, regardless of redundancy.
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].critical) continue;
    if (sel.bytes + items[i].bytes > byte_budget) continue;
    sel.utility += marginal_utility(items[i], delivered);
    sel.bytes += items[i].bytes;
    sel.order.push_back(i);
    delivered.push_back(items[i].name);
    used[i] = true;
  }

  // Greedy marginal-utility-per-byte over the rest.
  for (;;) {
    double best_ratio = 0.0;
    std::size_t best = items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (used[i] || items[i].critical) continue;
      if (sel.bytes + items[i].bytes > byte_budget) continue;
      const double mu = marginal_utility(items[i], delivered);
      const double ratio =
          mu / std::max<double>(static_cast<double>(items[i].bytes), 1.0);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == items.size()) break;
    used[best] = true;
    sel.utility += marginal_utility(items[best], delivered);
    sel.bytes += items[best].bytes;
    sel.order.push_back(best);
    delivered.push_back(items[best].name);
  }
  return sel;
}

Selection fifo_triage(std::span<const Item> items, std::uint64_t byte_budget) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return select_in_order(items, order, byte_budget);
}

Selection priority_triage(std::span<const Item> items,
                          std::uint64_t byte_budget) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (items[a].critical != items[b].critical) return items[a].critical;
    return items[a].base_utility > items[b].base_utility;
  });
  return select_in_order(items, order, byte_budget);
}

}  // namespace dde::pubsub
