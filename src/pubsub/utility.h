// Sub-additive information utility over hierarchical names (Sec. V-B).
//
// The utility of delivering an item depends on what was already delivered:
// ten pictures of the same damaged bridge are not ten times as informative
// as one. With a well-organized hierarchical name space, items whose names
// share longer prefixes carry more mutual information, so the marginal
// utility of an item is discounted by its maximum name-similarity to the
// already-delivered set. Greedy marginal-utility-per-byte triage then
// maximizes delivered utility across a bottleneck (within the classical
// greedy guarantee for submodular maximization).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "naming/name.h"

namespace dde::pubsub {

/// A publishable item competing for a bottleneck.
struct Item {
  naming::Name name;
  std::uint64_t bytes = 0;
  double base_utility = 1.0;
  /// Critical items (Sec. V-C) bypass triage: they are always selected
  /// first and are exempt from redundancy discounting.
  bool critical = false;
};

/// Marginal utility of `item` given already-delivered names: its base
/// utility discounted by the maximum name-similarity to any delivered name.
[[nodiscard]] double marginal_utility(const Item& item,
                                      std::span<const naming::Name> delivered);

/// Total delivered utility of `items` delivered in order (each item's
/// marginal computed against its predecessors).
[[nodiscard]] double delivered_utility(std::span<const Item> items);

/// Result of a triage selection.
struct Selection {
  std::vector<std::size_t> order;  ///< indexes into the input, in send order
  std::uint64_t bytes = 0;
  double utility = 0.0;
};

/// Greedy information-maximizing triage: send critical items first (in
/// input order), then repeatedly the item with the highest marginal utility
/// per byte that still fits the budget.
[[nodiscard]] Selection infomax_triage(std::span<const Item> items,
                                       std::uint64_t byte_budget);

/// FIFO baseline: input order, skipping items that no longer fit.
[[nodiscard]] Selection fifo_triage(std::span<const Item> items,
                                    std::uint64_t byte_budget);

/// Static-priority baseline: by base utility (descending), skipping items
/// that no longer fit. Models source-assigned priorities that cannot see
/// redundancy (the paper's first "implication").
[[nodiscard]] Selection priority_triage(std::span<const Item> items,
                                        std::uint64_t byte_budget);

}  // namespace dde::pubsub
