// Periodic task helper on top of the DES kernel.
//
// Models normally-off sensors that, once activated, sample at a fixed
// period (Sec. IV-A of the paper), and any other recurring activity.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/sim_time.h"
#include "des/simulator.h"

namespace dde::des {

/// Repeatedly invokes a callback at a fixed period until stopped.
///
/// The callback receives the current tick index (0-based). Stopping from
/// within the callback is allowed.
class PeriodicTask {
 public:
  using TickFn = std::function<void(std::uint64_t tick)>;

  PeriodicTask(Simulator& sim, SimTime period, TickFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { stop(); }

  /// Start ticking; the first tick fires after `initial_delay`.
  void start(SimTime initial_delay = SimTime::zero()) {
    if (running_) return;
    running_ = true;
    handle_ = sim_.schedule_after(initial_delay, [this] { tick(); });
  }

  /// Stop ticking. Idempotent.
  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(handle_);
  }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return count_; }

 private:
  void tick() {
    if (!running_) return;
    const std::uint64_t index = count_++;
    handle_ = sim_.schedule_after(period_, [this] { tick(); });
    fn_(index);
  }

  Simulator& sim_;
  SimTime period_;
  TickFn fn_;
  EventHandle handle_;
  bool running_ = false;
  std::uint64_t count_ = 0;
};

}  // namespace dde::des
