// Discrete-event simulation kernel.
//
// This is the substrate that replaces the paper's EMANE emulator: all
// network, sensing, and protocol activity is driven by timestamped events
// executed in deterministic order. Ties are broken by insertion sequence so
// that a given seed always replays the same trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/contracts.h"
#include "common/sim_time.h"

namespace dde::des {

/// Handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) noexcept : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// A deterministic discrete-event simulator.
///
/// Events are std::function callbacks executed at their scheduled time in
/// (time, insertion-sequence) order. Callbacks may schedule further events.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing during run().
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Number of events currently pending (cancelled events excluded).
  [[nodiscard]] std::size_t pending_events() const noexcept { return pending_.size(); }

  /// Raw queue occupancy, cancelled-but-not-yet-drained residue included.
  /// Observability hook: bounded by pending_events() plus a small compaction
  /// slack, so repeated cancel/schedule cycles cannot grow it unboundedly.
  [[nodiscard]] std::size_t queued_events() const noexcept { return queue_.size(); }

  /// Schedule `cb` to run at absolute time `when`. A `when` in the past
  /// (possible through accumulated floating-point arithmetic in callers) is
  /// clamped to now(): the simulation clock must never move backwards, and
  /// before this guard a release build would execute the event with
  /// now_ = ev.when, rewinding time for every later observer. Clamped
  /// events still run after everything already scheduled at now() (FIFO
  /// insertion-sequence order among same-time events).
  EventHandle schedule_at(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    const std::uint64_t seq = ++next_seq_;
    queue_.push(Event{when, seq, std::move(cb)});
    pending_.insert(seq);
    return EventHandle{seq};
  }

  /// Schedule `cb` to run `delay` after the current time.
  /// Precondition: delay >= 0.
  EventHandle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (it will not run); false if it already ran, was already
  /// cancelled, or the handle is invalid.
  bool cancel(EventHandle handle) {
    if (!handle.valid()) return false;
    if (pending_.erase(handle.seq_) == 0) return false;
    ++cancelled_in_queue_;
    maybe_compact();
    return true;
  }

  /// Run until the event queue drains or simulated time would exceed
  /// `until`. Events scheduled exactly at `until` are executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until = SimTime::max()) {
    // Occupancy accounting: every queued event is pending or cancelled.
    DDE_INVARIANT(queue_.size() == pending_.size() + cancelled_in_queue_,
                  "Simulator: queue occupancy accounting desync");
    std::uint64_t ran = 0;
    while (pop_one(until)) ++ran;
    // Cancelled residue sitting past the horizon must not pin the clock:
    // drain it so a queue holding no runnable work counts as empty.
    drain_cancelled_prefix();
    if (queue_.empty() && now_ < until && until != SimTime::max()) now_ = until;
    return ran;
  }

  /// Run a single event if one is pending. Returns whether one ran.
  bool step() { return pop_one(SimTime::max()); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  bool pop_one(SimTime until) {
    while (!queue_.empty()) {
      if (queue_.top().when > until) return false;
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (pending_.erase(ev.seq) == 0) {  // was cancelled
        --cancelled_in_queue_;
        continue;
      }
      // The clock must never move backwards: schedule_at clamps past-time
      // schedules, so a rewind here means heap-order corruption.
      DDE_CHECK(ev.when >= now_,
                "Simulator: event queue lost time monotonicity");
      now_ = ev.when;
      ++executed_;
      ev.cb();
      return true;
    }
    return false;
  }

  /// Pop cancelled events off the queue head (they would be skipped by
  /// pop_one anyway, but past-horizon residue is never reached by it).
  void drain_cancelled_prefix() {
    while (!queue_.empty() && !pending_.contains(queue_.top().seq)) {
      queue_.pop();
      --cancelled_in_queue_;
    }
  }

  /// Rebuild the heap without cancelled residue once it dominates: repeated
  /// cancel/schedule cycles (retry watchdogs, rearmed timers) would
  /// otherwise grow the queue without bound. Amortized O(1) per cancel.
  void maybe_compact() {
    if (cancelled_in_queue_ < 64 || cancelled_in_queue_ * 2 < queue_.size()) {
      return;
    }
    std::vector<Event> keep;
    keep.reserve(queue_.size() - cancelled_in_queue_);
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (pending_.contains(ev.seq)) keep.push_back(std::move(ev));
    }
    queue_ = decltype(queue_)(Later{}, std::move(keep));
    cancelled_in_queue_ = 0;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_in_queue_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;
};

}  // namespace dde::des
