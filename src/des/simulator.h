// Discrete-event simulation kernel.
//
// This is the substrate that replaces the paper's EMANE emulator: all
// network, sensing, and protocol activity is driven by timestamped events
// executed in deterministic order. Ties are broken by insertion sequence so
// that a given seed always replays the same trajectory.
//
// The engine is a flat ladder/calendar queue (des/ladder_queue.h) with
// tombstone-flag cancellation: no per-event heap churn, no side pending-set
// lookups. It executes the exact (time, insertion-seq) total order of the
// original std::priority_queue kernel — tests/test_event_queue_equiv.cpp
// pins the two trajectories byte-identical on cancel/compact/tie stress
// patterns, and docs/PERFORMANCE.md records the throughput gap.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/contracts.h"
#include "common/sim_time.h"
#include "des/ladder_queue.h"

namespace dde::des {

/// Handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return ticket_.seq != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(LadderQueue::Ticket ticket) noexcept
      : ticket_(ticket) {}
  LadderQueue::Ticket ticket_;
};

/// A deterministic discrete-event simulator.
///
/// Events are std::function callbacks executed at their scheduled time in
/// (time, insertion-sequence) order. Callbacks may schedule further events.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing during run().
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Number of events currently pending (cancelled events excluded).
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.live();
  }

  /// Raw queue occupancy, cancelled-but-not-yet-drained residue included.
  /// Observability hook: bounded by pending_events() plus a small compaction
  /// slack, so repeated cancel/schedule cycles cannot grow it unboundedly.
  [[nodiscard]] std::size_t queued_events() const noexcept {
    return queue_.occupancy();
  }

  /// Schedule `cb` to run at absolute time `when`. A `when` in the past
  /// (possible through accumulated floating-point arithmetic in callers) is
  /// clamped to now(): the simulation clock must never move backwards, and
  /// before this guard a release build would execute the event with
  /// now_ = ev.when, rewinding time for every later observer. Clamped
  /// events still run after everything already scheduled at now() (FIFO
  /// insertion-sequence order among same-time events).
  EventHandle schedule_at(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    return EventHandle{queue_.insert(when, ++next_seq_, std::move(cb))};
  }

  /// Schedule `cb` to run `delay` after the current time. A negative delay
  /// (caller arithmetic gone wrong) is clamped to zero with a once-per-site
  /// notice: before this guard, now_ + delay silently landed in the past
  /// and schedule_at's clamp hid the bug without a trace.
  EventHandle schedule_after(SimTime delay, Callback cb) {
    DDE_CLAMP_OR(delay >= SimTime::zero(), delay = SimTime::zero(),
                 "schedule_after: negative delay clamped to zero");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (it will not run); false if it already ran, was already
  /// cancelled, or the handle is invalid. O(1): the event is tombstoned in
  /// place and drained (or compacted) later.
  bool cancel(EventHandle handle) {
    if (!handle.valid()) return false;
    return queue_.cancel(handle.ticket_);
  }

  /// Run until the event queue drains or simulated time would exceed
  /// `until`. Events scheduled exactly at `until` are executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until = SimTime::max()) {
    // Occupancy accounting: every queued event is live or tombstoned, and
    // the bands hold exactly the tracked occupancy.
    DDE_INVARIANT(queue_.consistent(),
                  "Simulator: queue occupancy accounting desync");
    std::uint64_t ran = 0;
    while (pop_one(until)) ++ran;
    // peek_min() drained any tombstoned residue ahead of the first live
    // event (or the whole queue), so a queue holding no runnable work
    // counts as empty and must not pin the clock.
    if (queue_.live() == 0 && now_ < until && until != SimTime::max()) {
      now_ = until;
    }
    return ran;
  }

  /// Run a single event if one is pending. Returns whether one ran.
  bool step() { return pop_one(SimTime::max()); }

 private:
  bool pop_one(SimTime until) {
    const LadderQueue::Min* min = queue_.peek_min();
    if (min == nullptr || min->when > until) return false;
    // The clock must never move backwards: schedule_at clamps past-time
    // schedules, so a rewind here means band-order corruption.
    DDE_CHECK(min->when >= now_,
              "Simulator: event queue lost time monotonicity");
    now_ = min->when;
    Callback cb = queue_.pop_min();
    ++executed_;
    cb();
    return true;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  LadderQueue queue_;
};

}  // namespace dde::des
