// Ladder (calendar) event queue: the flat engine behind des::Simulator.
//
// The queue maintains the exact total order (when, insertion-seq) the old
// std::priority_queue kernel produced — byte-identical trajectories are the
// contract (tests/test_event_queue_equiv.cpp pins it against a frozen copy
// of that kernel) — but replaces O(log n) heap churn and a side
// unordered_set pending-lookup with three flat bands:
//
//   bottom  sorted vector (descending; back() is the minimum) — the near
//           band, popped O(1), in-band inserts by binary search + memmove
//   rung    an array of unsorted time buckets covering the middle distance;
//           a bucket is sorted only when it becomes the active band
//   top     unsorted far-future overflow, O(1) append; distributed into a
//           fresh rung (bucket width adapted to the observed span) when the
//           current rung is exhausted
//
// Cancellation is a tombstone flag on the event's pool node: O(1), no
// hashing, no heap surgery. Tombstoned refs are skipped (and their slots
// freed) when they surface at the band minimum; a compaction pass rebuilds
// the bands once tombstones dominate, so cancel/re-schedule cycles cannot
// grow occupancy without bound.
//
// Determinism: every structure is a plain vector iterated in index order;
// sorting uses the unique (when, seq) key, so there is nothing for a tie to
// depend on. dde_lint-clean by construction (no unordered containers).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/sim_time.h"

namespace dde::des {

class LadderQueue {
 public:
  using Callback = std::function<void()>;

  /// (slot, seq) pair naming one scheduled event. `seq` is globally unique
  /// per queue, so a stale handle whose slot was recycled never matches.
  struct Ticket {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
  };

  /// Number of live (scheduled, not cancelled, not executed) events.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

  /// Raw band occupancy: live events plus tombstoned residue.
  [[nodiscard]] std::size_t occupancy() const noexcept { return occupancy_; }

  [[nodiscard]] std::size_t tombstones() const noexcept {
    return tombstones_;
  }

  /// Expensive accounting sweep for DDE_INVARIANT: the band sizes must add
  /// up to the tracked occupancy, and occupancy must equal live+tombstones.
  [[nodiscard]] bool consistent() const noexcept {
    std::size_t in_buckets = 0;
    for (std::size_t b = current_bucket_; b < buckets_.size(); ++b) {
      in_buckets += buckets_[b].size();
    }
    return bottom_.size() + in_buckets + top_.size() == occupancy_ &&
           in_buckets == rung_size_ && live_ + tombstones_ == occupancy_;
  }

  /// Insert an event. `seq` must be strictly greater than every previously
  /// inserted seq (the caller owns the counter — Simulator's insertion
  /// sequence).
  Ticket insert(SimTime when, std::uint64_t seq, Callback cb) {
    const std::uint32_t slot = allocate_node(seq, std::move(cb));
    place(Ref{when, seq, slot});
    ++occupancy_;
    ++live_;
    return Ticket{slot, seq};
  }

  /// Tombstone a live event. Returns false if the ticket no longer names a
  /// live event (already executed, already cancelled, or recycled slot).
  bool cancel(const Ticket& ticket) {
    if (ticket.slot >= pool_.size()) return false;
    Node& node = pool_[ticket.slot];
    if (!node.in_use || node.cancelled || node.seq != ticket.seq) return false;
    node.cancelled = true;
    node.cb = nullptr;  // release captures eagerly
    ++tombstones_;
    --live_;
    maybe_compact();
    return true;
  }

  /// Earliest live event's (when, seq), or nullptr when no live event
  /// remains. Skips and frees tombstoned residue at the front, and may
  /// advance rung/top bands into the bottom band (amortized O(1) per
  /// event over a run).
  struct Min {
    SimTime when;
    std::uint64_t seq;
  };
  [[nodiscard]] const Min* peek_min() {
    for (;;) {
      if (bottom_.empty() && !advance_bands()) return nullptr;
      const Ref& ref = bottom_.back();
      Node& node = pool_[ref.slot];
      if (node.cancelled) {
        free_node(ref.slot);
        bottom_.pop_back();
        --occupancy_;
        --tombstones_;
        continue;
      }
      min_.when = ref.when;
      min_.seq = ref.seq;
      return &min_;
    }
  }

  /// Pop the event peek_min() points at. Precondition: peek_min() returned
  /// non-null with no intervening mutation.
  Callback pop_min() {
    DDE_CHECK(!bottom_.empty(), "LadderQueue: pop from empty queue");
    const Ref ref = bottom_.back();
    bottom_.pop_back();
    Node& node = pool_[ref.slot];
    Callback cb = std::move(node.cb);
    free_node(ref.slot);
    --occupancy_;
    --live_;
    return cb;
  }

 private:
  struct Ref {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Node {
    Callback cb;
    std::uint64_t seq = 0;
    std::uint32_t next_free = 0;
    bool in_use = false;
    bool cancelled = false;
  };

  static constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();

  static bool ref_after(const Ref& a, const Ref& b) noexcept {
    // Descending (when, seq): back() of a sorted vector is the minimum.
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::uint32_t allocate_node(std::uint64_t seq, Callback cb) {
    std::uint32_t slot;
    if (free_head_ != kNil) {
      slot = free_head_;
      free_head_ = pool_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Node& node = pool_[slot];
    node.cb = std::move(cb);
    node.seq = seq;
    node.in_use = true;
    node.cancelled = false;
    return slot;
  }

  void free_node(std::uint32_t slot) {
    Node& node = pool_[slot];
    node.cb = nullptr;
    node.in_use = false;
    node.cancelled = false;
    node.next_free = free_head_;
    free_head_ = slot;
  }

  void place(const Ref& ref) {
    if (ref.when < bottom_limit_) {
      const auto pos =
          std::upper_bound(bottom_.begin(), bottom_.end(), ref, ref_after);
      bottom_.insert(pos, ref);
      return;
    }
    if (rung_active_ && (rung_covers_max_ || ref.when < rung_end_)) {
      buckets_[bucket_index(ref.when)].push_back(ref);
      ++rung_size_;
      return;
    }
    top_.push_back(ref);
  }

  [[nodiscard]] std::size_t bucket_index(SimTime when) const noexcept {
    // A straggler earlier than rung_start_ can only exist while bucket 0 is
    // still unconsumed (bottom_limit_ exceeds rung_start_ afterwards), so
    // folding it into the first pending bucket preserves order: the bucket
    // is sorted on promotion.
    if (when <= rung_start_) return current_bucket_;
    const auto offset =
        static_cast<std::uint64_t>(when.count() - rung_start_.count());
    std::size_t idx = static_cast<std::size_t>(offset / bucket_width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    return idx;
  }

  /// Refill the empty bottom band from the rung (next non-empty bucket,
  /// sorted on promotion) or, when the rung is spent, rebuild the rung from
  /// the top band. Returns whether bottom_ is now non-empty.
  bool advance_bands() {
    for (;;) {
      if (rung_active_) {
        while (current_bucket_ < buckets_.size() &&
               buckets_[current_bucket_].empty()) {
          ++current_bucket_;
        }
        if (current_bucket_ < buckets_.size()) {
          std::vector<Ref>& bucket = buckets_[current_bucket_];
          rung_size_ -= bucket.size();
          bottom_.swap(bucket);
          bucket.clear();
          std::sort(bottom_.begin(), bottom_.end(), ref_after);
          bottom_limit_ = bucket_end(current_bucket_);
          ++current_bucket_;
          return true;
        }
        rung_active_ = false;
        rung_covers_max_ = false;
      }
      if (top_.empty()) return false;
      build_rung_from_top();
    }
  }

  [[nodiscard]] SimTime bucket_end(std::size_t bucket) const noexcept {
    if (rung_covers_max_ && bucket + 1 == buckets_.size()) {
      return SimTime::max();
    }
    const auto start = static_cast<std::uint64_t>(rung_start_.count());
    const std::uint64_t end =
        start + bucket_width_ * static_cast<std::uint64_t>(bucket + 1);
    const auto cap =
        static_cast<std::uint64_t>(std::numeric_limits<SimTime::rep>::max());
    return end >= cap ? SimTime::max()
                      : SimTime::micros(static_cast<SimTime::rep>(end));
  }

  void build_rung_from_top() {
    SimTime lo = top_.front().when;
    SimTime hi = lo;
    for (const Ref& ref : top_) {
      if (ref.when < lo) lo = ref.when;
      if (ref.when > hi) hi = ref.when;
    }
    std::size_t count = 1;
    while (count < top_.size() && count < (std::size_t{1} << 16)) count *= 2;
    const auto span =
        static_cast<std::uint64_t>(hi.count() - lo.count()) + 1;
    bucket_width_ = (span + count - 1) / count;
    if (bucket_width_ == 0) bucket_width_ = 1;
    rung_start_ = lo;
    const auto cap =
        static_cast<std::uint64_t>(std::numeric_limits<SimTime::rep>::max());
    const std::uint64_t lo_u = static_cast<std::uint64_t>(lo.count());
    rung_covers_max_ =
        bucket_width_ > (cap - lo_u) / static_cast<std::uint64_t>(count);
    rung_end_ = rung_covers_max_
                    ? SimTime::max()
                    : SimTime::micros(static_cast<SimTime::rep>(
                          lo_u + bucket_width_ * count));
    // Every prior bucket was promoted (and cleared) before the rung was
    // declared spent, so resizing alone yields `count` empty buckets.
    buckets_.resize(count);
    current_bucket_ = 0;
    for (const Ref& ref : top_) {
      buckets_[bucket_index(ref.when)].push_back(ref);
    }
    rung_size_ = top_.size();
    top_.clear();
    rung_active_ = true;
  }

  /// Rebuild the bands without tombstoned residue once it dominates:
  /// repeated cancel/schedule cycles (retry watchdogs, rearmed timers)
  /// would otherwise grow occupancy without bound. Amortized O(1)/cancel.
  void maybe_compact() {
    if (tombstones_ < 64 || tombstones_ * 2 < occupancy_) return;
    const auto dead = [this](const Ref& ref) {
      if (!pool_[ref.slot].cancelled) return false;
      free_node(ref.slot);
      return true;
    };
    bottom_.erase(std::remove_if(bottom_.begin(), bottom_.end(), dead),
                  bottom_.end());
    rung_size_ = 0;
    for (std::size_t b = current_bucket_; b < buckets_.size(); ++b) {
      auto& bucket = buckets_[b];
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(), dead),
                   bucket.end());
      rung_size_ += bucket.size();
    }
    top_.erase(std::remove_if(top_.begin(), top_.end(), dead), top_.end());
    occupancy_ -= tombstones_;
    tombstones_ = 0;
  }

  // Bands. Invariant: every ref with when < bottom_limit_ lives in bottom_;
  // refs in [bottom_limit_, rung_end_) live in the rung while it is active;
  // everything else lives in top_.
  std::vector<Ref> bottom_;  ///< sorted descending; back() is the minimum
  SimTime bottom_limit_ = SimTime::zero();
  bool rung_active_ = false;
  bool rung_covers_max_ = false;
  SimTime rung_start_ = SimTime::zero();
  SimTime rung_end_ = SimTime::zero();
  std::uint64_t bucket_width_ = 1;  ///< microseconds per bucket
  std::size_t current_bucket_ = 0;
  std::size_t rung_size_ = 0;  ///< refs in buckets [current_bucket_..)
  std::vector<std::vector<Ref>> buckets_;
  std::vector<Ref> top_;

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  std::size_t occupancy_ = 0;
  std::size_t tombstones_ = 0;
  Min min_{};
};

}  // namespace dde::des
