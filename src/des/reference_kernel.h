// Frozen copy of the pre-ladder-queue DES kernel: std::priority_queue over
// full Event records plus an unordered_set pending-set for cancellation.
//
// NOT for production use — des::Simulator (the ladder-queue kernel) is the
// one engine the stack runs on. This copy exists so that
//   * tests/test_event_queue_equiv.cpp can pin the ladder queue
//     byte-identical against the trajectory the old kernel produces, and
//   * bench/scale_city.cpp can race the two kernels on the same recorded
//     workload and report both events/sec figures.
// Behavior is frozen at PR 7 (clock-advance fix, past-time clamp, queue
// compaction) and must not be "improved": it is the baseline being compared
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/contracts.h"
#include "common/sim_time.h"

namespace dde::des {

/// The old kernel, verbatim (handles are plain seq numbers).
class ReferenceSimulator {
 public:
  using Callback = std::function<void()>;
  using Handle = std::uint64_t;  ///< 0 = invalid

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t queued_events() const noexcept {
    return queue_.size();
  }

  Handle schedule_at(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    const std::uint64_t seq = ++next_seq_;
    queue_.push(Event{when, seq, std::move(cb)});
    pending_.insert(seq);
    return seq;
  }

  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(Handle handle) {
    if (handle == 0) return false;
    if (pending_.erase(handle) == 0) return false;
    ++cancelled_in_queue_;
    maybe_compact();
    return true;
  }

  std::uint64_t run_until(SimTime until = SimTime::max()) {
    std::uint64_t ran = 0;
    while (pop_one(until)) ++ran;
    drain_cancelled_prefix();
    if (queue_.empty() && now_ < until && until != SimTime::max()) now_ = until;
    return ran;
  }

  bool step() { return pop_one(SimTime::max()); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  bool pop_one(SimTime until) {
    while (!queue_.empty()) {
      if (queue_.top().when > until) return false;
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (pending_.erase(ev.seq) == 0) {  // was cancelled
        --cancelled_in_queue_;
        continue;
      }
      DDE_CHECK(ev.when >= now_,
                "ReferenceSimulator: event queue lost time monotonicity");
      now_ = ev.when;
      ++executed_;
      ev.cb();
      return true;
    }
    return false;
  }

  void drain_cancelled_prefix() {
    while (!queue_.empty() && !pending_.contains(queue_.top().seq)) {
      queue_.pop();
      --cancelled_in_queue_;
    }
  }

  void maybe_compact() {
    if (cancelled_in_queue_ < 64 || cancelled_in_queue_ * 2 < queue_.size()) {
      return;
    }
    std::vector<Event> keep;
    keep.reserve(queue_.size() - cancelled_in_queue_);
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (pending_.contains(ev.seq)) keep.push_back(std::move(ev));
    }
    queue_ = decltype(queue_)(Later{}, std::move(keep));
    cancelled_in_queue_ = 0;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_in_queue_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;
};

}  // namespace dde::des
