// Bayesian label belief under noisy evidence (Sec. IV-B, "Noisy sensor
// data").
//
// When sensors are noisy, one evidence object is not enough to set a label;
// multiple observations must corroborate it to a required confidence. A
// LabelBelief accumulates observations in log-odds space: an observation
// from a source with reliability r (probability the reading is correct)
// shifts the log-odds of "label is true" by ±log(r/(1−r)).
#pragma once

#include <cmath>

#include "common/tristate.h"

namespace dde::fusion {

/// log(p/(1−p)); p must be in (0, 1).
[[nodiscard]] inline double log_odds(double p) noexcept {
  return std::log(p / (1.0 - p));
}

/// Inverse of log_odds.
[[nodiscard]] inline double from_log_odds(double l) noexcept {
  return 1.0 / (1.0 + std::exp(-l));
}

/// Posterior belief about one Boolean label.
class LabelBelief {
 public:
  /// Starts from the neutral prior P(true) = 0.5.
  LabelBelief() = default;

  /// `prior` = initial P(label is true), in (0, 1).
  explicit LabelBelief(double prior) : log_odds_(log_odds(prior)) {}

  /// Incorporate one observation. `reading` is the observed value;
  /// `reliability` is the probability the observation is correct, in
  /// (0.5, 1) for informative sources. A reliability of exactly 0.5 is a
  /// no-op (uninformative); below 0.5 the reading is evidence for the
  /// opposite value and is weighted accordingly.
  void observe(bool reading, double reliability) {
    const double step = log_odds(reliability);
    log_odds_ += reading ? step : -step;
    ++observations_;
  }

  [[nodiscard]] double p_true() const noexcept { return from_log_odds(log_odds_); }

  /// Confidence in the current maximum-a-posteriori value.
  [[nodiscard]] double confidence() const noexcept {
    const double p = p_true();
    return p >= 0.5 ? p : 1.0 - p;
  }

  /// The MAP value if confidence meets `threshold`, else unknown.
  [[nodiscard]] Tristate decided(double threshold) const noexcept {
    if (confidence() < threshold) return Tristate::kUnknown;
    return p_true() >= 0.5 ? Tristate::kTrue : Tristate::kFalse;
  }

  [[nodiscard]] int observations() const noexcept { return observations_; }
  [[nodiscard]] double current_log_odds() const noexcept { return log_odds_; }

 private:
  double log_odds_ = 0.0;  // log-odds of 0.5
  int observations_ = 0;
};

/// Minimum number of agreeing observations from a source of reliability
/// `r` needed to push a neutral prior past confidence `threshold`.
/// Precondition: 0.5 < r < 1, 0.5 <= threshold < 1.
[[nodiscard]] inline int min_corroborating_observations(double reliability,
                                                        double threshold,
                                                        double prior = 0.5) {
  const double needed = log_odds(threshold);
  const double start = std::abs(log_odds(prior));
  const double step = log_odds(reliability);
  if (start >= needed) return 0;
  return static_cast<int>(std::ceil((needed - start) / step - 1e-12));
}

}  // namespace dde::fusion
