// Corroboration planning: which noisy sources to query, and how many times,
// so the resulting evidence can decide a label at a required confidence
// (Sec. IV-B).
//
// Each candidate source contributes log(r/(1−r)) of log-odds per (agreeing)
// observation at some retrieval cost. Reaching confidence τ from a neutral
// prior needs total log-odds ≥ log(τ/(1−τ)), so planning is a covering
// knapsack: pick observations minimizing cost subject to a log-odds budget.
// The greedy density rule (information per unit cost) is the planner used
// by the system; an exact branch-and-bound is provided as a reference.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"

namespace dde::fusion {

/// One candidate observation source for a label.
struct NoisySource {
  SourceId id;
  double reliability = 0.8;  ///< P(reading correct), in (0.5, 1)
  double cost = 1.0;         ///< retrieval cost per observation
  int max_observations = 1;  ///< distinct observations obtainable
};

/// A corroboration plan: how many observations to take from each source.
struct CorroborationPlan {
  /// counts[i] = observations planned from sources[i].
  std::vector<int> counts;
  double cost = 0.0;
  double log_odds = 0.0;  ///< total assuming observations agree
  bool achievable = false;  ///< log-odds budget met
};

/// Log-odds needed to decide at `threshold` from `prior` (worst-case sign).
[[nodiscard]] double required_log_odds(double threshold, double prior = 0.5);

/// Greedy plan: repeatedly take an observation from the source with the
/// highest log-odds-per-cost density that still has capacity.
[[nodiscard]] CorroborationPlan greedy_corroboration(
    const std::vector<NoisySource>& sources, double threshold,
    double prior = 0.5);

/// Exact minimum-cost plan by branch and bound (reference; total capacity
/// ≤ ~30 observations).
[[nodiscard]] CorroborationPlan exact_corroboration(
    const std::vector<NoisySource>& sources, double threshold,
    double prior = 0.5);

}  // namespace dde::fusion
