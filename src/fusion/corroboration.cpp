#include "fusion/corroboration.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/contracts.h"
#include "fusion/belief.h"

namespace dde::fusion {

double required_log_odds(double threshold, double prior) {
  DDE_CHECK(threshold >= 0.5 && threshold < 1.0,
            "required_log_odds: threshold must be in [0.5, 1) or the target "
            "log-odds is infinite");
  DDE_CHECK(prior > 0.0 && prior < 1.0,
            "required_log_odds: prior must be in (0, 1)");
  // Planning is worst-case over the unknown truth: the prior may point the
  // wrong way, so treat its pull as adverse.
  return log_odds(threshold) + std::abs(log_odds(prior));
}

namespace {

double step_of(const NoisySource& s) {
  DDE_CHECK(s.reliability > 0.5 && s.reliability < 1.0,
            "greedy_corroboration: source reliability must be in (0.5, 1) "
            "to contribute positive finite evidence");
  return log_odds(s.reliability);
}

}  // namespace

CorroborationPlan greedy_corroboration(const std::vector<NoisySource>& sources,
                                       double threshold, double prior) {
  const double needed = required_log_odds(threshold, prior);
  CorroborationPlan plan;
  plan.counts.assign(sources.size(), 0);

  // Sources sorted by information density; each is exhausted before moving
  // to the next (density is constant per source, so one sort suffices).
  std::vector<std::size_t> order(sources.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return step_of(sources[a]) / std::max(sources[a].cost, 1e-12) >
           step_of(sources[b]) / std::max(sources[b].cost, 1e-12);
  });

  for (std::size_t i : order) {
    while (plan.log_odds < needed &&
           plan.counts[i] < sources[i].max_observations) {
      ++plan.counts[i];
      plan.cost += sources[i].cost;
      plan.log_odds += step_of(sources[i]);
    }
    if (plan.log_odds >= needed) break;
  }
  plan.achievable = plan.log_odds >= needed;
  return plan;
}

namespace {

struct BnB {
  const std::vector<NoisySource>& sources;
  double needed;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_counts;
  std::vector<int> counts;
  // Max remaining log-odds obtainable from sources[i..] (suffix sums).
  std::vector<double> suffix_info;

  explicit BnB(const std::vector<NoisySource>& s, double need)
      : sources(s), needed(need), counts(s.size(), 0) {
    suffix_info.assign(s.size() + 1, 0.0);
    for (std::size_t i = s.size(); i-- > 0;) {
      suffix_info[i] = suffix_info[i + 1] +
                       step_of(s[i]) * s[i].max_observations;
    }
  }

  void solve(std::size_t i, double cost, double info) {
    if (cost >= best_cost) return;
    if (info >= needed) {
      best_cost = cost;
      best_counts = counts;
      return;
    }
    if (i == sources.size() || info + suffix_info[i] < needed) return;
    const double step = step_of(sources[i]);
    for (int k = 0; k <= sources[i].max_observations; ++k) {
      counts[i] = k;
      solve(i + 1, cost + k * sources[i].cost, info + k * step);
    }
    counts[i] = 0;
  }
};

}  // namespace

CorroborationPlan exact_corroboration(const std::vector<NoisySource>& sources,
                                      double threshold, double prior) {
  const double needed = required_log_odds(threshold, prior);
  BnB bnb(sources, needed);
  bnb.solve(0, 0.0, 0.0);
  CorroborationPlan plan;
  plan.counts.assign(sources.size(), 0);
  if (bnb.best_cost == std::numeric_limits<double>::infinity()) {
    // Unachievable: report the all-in plan so callers see the gap.
    for (std::size_t i = 0; i < sources.size(); ++i) {
      plan.counts[i] = sources[i].max_observations;
      plan.cost += sources[i].cost * sources[i].max_observations;
      plan.log_odds += step_of(sources[i]) * sources[i].max_observations;
    }
    plan.achievable = false;
    return plan;
  }
  plan.counts = bnb.best_counts;
  plan.achievable = true;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    plan.cost += plan.counts[i] * sources[i].cost;
    plan.log_odds += plan.counts[i] * step_of(sources[i]);
  }
  return plan;
}

}  // namespace dde::fusion
