// Source reliability profiles from annotator feedback (Sec. IV-B).
//
// Annotators that examine multiple pieces of evidence can mark individual
// inputs as useful or not. That feedback accumulates into a per-source
// Beta posterior over the source's reliability. Feedback is weighted by
// the trust placed in the annotator giving it, so a bad annotator's false
// feedback has bounded influence — and different query originators can keep
// different profiles for the same source, because they trust different
// annotators (the paper's pairwise-trust point).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace dde::fusion {

/// Beta-posterior reliability estimate for one source.
struct BetaEstimate {
  double alpha = 1.0;  ///< pseudo-count of useful evidence (+1 prior)
  double beta = 1.0;   ///< pseudo-count of useless evidence (+1 prior)

  [[nodiscard]] double mean() const noexcept { return alpha / (alpha + beta); }
  [[nodiscard]] double observations() const noexcept {
    return alpha + beta - 2.0;
  }
  /// Posterior variance of the reliability.
  [[nodiscard]] double variance() const noexcept {
    const double s = alpha + beta;
    return alpha * beta / (s * s * (s + 1.0));
  }
};

/// A per-originator reliability profile over data sources.
class ReliabilityProfile {
 public:
  /// Prior pseudo-counts for unseen sources (default: uniform Beta(1,1)).
  explicit ReliabilityProfile(double prior_alpha = 1.0,
                              double prior_beta = 1.0)
      : prior_alpha_(prior_alpha), prior_beta_(prior_beta) {}

  /// Record annotator feedback about one piece of evidence from `source`.
  /// `useful` is the annotator's verdict; `annotator_trust` in [0, 1]
  /// scales the feedback's weight.
  void record(SourceId source, bool useful, double annotator_trust = 1.0);

  /// Current posterior for `source` (the prior if never seen).
  [[nodiscard]] BetaEstimate estimate(SourceId source) const;

  /// Posterior-mean reliability, the quantity plugged into corroboration
  /// planning and source selection.
  [[nodiscard]] double reliability(SourceId source) const {
    return estimate(source).mean();
  }

  /// Sources whose posterior mean is below `floor` after at least
  /// `min_observations` weighted observations — candidates for avoidance.
  [[nodiscard]] std::vector<SourceId> unreliable_sources(
      double floor, double min_observations = 3.0) const;

  [[nodiscard]] std::size_t tracked_sources() const noexcept {
    return table_.size();
  }

 private:
  double prior_alpha_;
  double prior_beta_;
  std::unordered_map<SourceId, BetaEstimate> table_;
};

}  // namespace dde::fusion
