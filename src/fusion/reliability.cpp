#include "fusion/reliability.h"

#include <algorithm>

#include "common/contracts.h"

namespace dde::fusion {

void ReliabilityProfile::record(SourceId source, bool useful,
                                double annotator_trust) {
  // Out-of-range trust would silently skew the beta posterior; clamp into
  // the legal weight range.
  DDE_CLAMP_OR(annotator_trust >= 0.0 && annotator_trust <= 1.0,
               annotator_trust = std::clamp(annotator_trust, 0.0, 1.0),
               "ReliabilityProfile::record: annotator_trust clamped to [0,1]");
  auto [it, inserted] =
      table_.try_emplace(source, BetaEstimate{prior_alpha_, prior_beta_});
  if (useful) {
    it->second.alpha += annotator_trust;
  } else {
    it->second.beta += annotator_trust;
  }
}

BetaEstimate ReliabilityProfile::estimate(SourceId source) const {
  auto it = table_.find(source);
  if (it == table_.end()) return BetaEstimate{prior_alpha_, prior_beta_};
  return it->second;
}

std::vector<SourceId> ReliabilityProfile::unreliable_sources(
    double floor, double min_observations) const {
  std::vector<SourceId> out;
  // lint: ordered-fold — independent per-source filter, result sorted below.
  for (const auto& [source, est] : table_) {
    if (est.observations() >= min_observations && est.mean() < floor) {
      out.push_back(source);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dde::fusion
