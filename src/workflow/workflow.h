// Decision workflows (Sec. VIII).
//
// Users in mission-driven settings follow prescribed workflows: a flowchart
// of decision points, each conditioned on certain inputs. Since the
// flowchart's structure is known (or learnable), the system can anticipate
// which decision comes next and start acquiring its evidence early —
// "anticipating what information is needed next … gives the system more
// time to acquire it before it is actually used."
//
// A WorkflowGraph holds decision points (each with the labels its decision
// needs) and outcome-conditioned transition probabilities: after resolving
// point P with outcome k (the index of the chosen course of action, or
// kNoViableAction), the next decision point follows a categorical
// distribution.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace dde::workflow {

/// Identifies a decision point in a workflow.
using PointId = StrongId<struct PointIdTag>;

/// Outcome of a resolved decision: index of the chosen course of action.
/// kNoViableAction encodes "all alternatives known non-viable".
using Outcome = std::int32_t;
inline constexpr Outcome kNoViableAction = -1;

/// One decision point: a name and the labels its decision logic needs.
struct DecisionPoint {
  PointId id;
  std::string name;
  std::vector<LabelId> labels;
};

/// A possible successor with its probability.
struct Successor {
  PointId point;
  double probability = 0.0;
};

/// The workflow flowchart with outcome-conditioned transitions.
class WorkflowGraph {
 public:
  /// Add a decision point; returns its id (dense from 0).
  PointId add_point(std::string name, std::vector<LabelId> labels);

  /// Declare that resolving `from` with `outcome` leads to `to` with the
  /// given unnormalized weight. Weights for the same (from, outcome)
  /// accumulate and are normalized on query.
  void add_transition(PointId from, Outcome outcome, PointId to,
                      double weight = 1.0);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return points_.size();
  }
  [[nodiscard]] const DecisionPoint& point(PointId id) const;

  /// Successors of (from, outcome), probabilities normalized, sorted by
  /// descending probability (ties by point id). Empty if terminal.
  [[nodiscard]] std::vector<Successor> successors(PointId from,
                                                  Outcome outcome) const;

  /// Probability-weighted union of labels needed by the successors of
  /// (from, outcome) whose probability is at least `min_probability`.
  /// Returned as (label, reach probability that the label is needed),
  /// sorted by descending probability then label id — the prefetch order.
  [[nodiscard]] std::vector<std::pair<LabelId, double>> anticipated_labels(
      PointId from, Outcome outcome, double min_probability = 0.0) const;

 private:
  struct Key {
    PointId from;
    Outcome outcome;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.from != b.from) return a.from < b.from;
      return a.outcome < b.outcome;
    }
  };

  std::vector<DecisionPoint> points_;
  std::map<Key, std::map<PointId, double>> transitions_;
};

}  // namespace dde::workflow
