// Workflow mining (Sec. VIII): learn a decision workflow's transition
// structure from observed decision sequences.
//
// Each observed session is a sequence of (decision point, outcome) steps.
// The miner accumulates outcome-conditioned first-order transition counts
// and exports a WorkflowGraph whose transition weights are the (optionally
// Laplace-smoothed) counts. Point identities and label footprints must be
// provided by the caller (they are observable from the queries themselves).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "workflow/workflow.h"

namespace dde::workflow {

/// One step of an observed session.
struct ObservedStep {
  PointId point;
  Outcome outcome = 0;
};

/// First-order, outcome-conditioned sequence miner.
class SequenceMiner {
 public:
  /// `points` defines the decision-point universe of the learned graph.
  explicit SequenceMiner(std::vector<DecisionPoint> points)
      : points_(std::move(points)) {}

  /// Record one complete session (ordered decision steps).
  void record_session(const std::vector<ObservedStep>& session);

  /// Number of sessions recorded.
  [[nodiscard]] std::size_t sessions() const noexcept { return sessions_; }

  /// Total transitions observed for (from, outcome).
  [[nodiscard]] double transition_count(PointId from, Outcome outcome) const;

  /// Export the learned graph. For every observed (from, outcome) context,
  /// transition weights are the observed counts; `smoothing` > 0 adds a
  /// Laplace pseudo-count toward every point in the universe, so rare
  /// successors are never assigned probability zero.
  [[nodiscard]] WorkflowGraph learned_graph(double smoothing = 0.0) const;

  /// Empirical probability of `to` following (from, outcome); 0 if the
  /// context was never observed.
  [[nodiscard]] double transition_probability(PointId from, Outcome outcome,
                                              PointId to) const;

 private:
  struct Key {
    PointId from;
    Outcome outcome;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.from != b.from) return a.from < b.from;
      return a.outcome < b.outcome;
    }
  };

  std::vector<DecisionPoint> points_;
  std::map<Key, std::map<PointId, double>> counts_;
  std::size_t sessions_ = 0;
};

}  // namespace dde::workflow
