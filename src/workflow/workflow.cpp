#include "workflow/workflow.h"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::workflow {

PointId WorkflowGraph::add_point(std::string name,
                                 std::vector<LabelId> labels) {
  const PointId id{points_.size()};
  points_.push_back(DecisionPoint{id, std::move(name), std::move(labels)});
  return id;
}

void WorkflowGraph::add_transition(PointId from, Outcome outcome, PointId to,
                                   double weight) {
  DDE_CHECK(from.valid() && from.value() < points_.size(),
            "add_transition: unknown source point");
  DDE_CHECK(to.valid() && to.value() < points_.size(),
            "add_transition: unknown destination point");
  DDE_CHECK(weight > 0.0,
            "add_transition: weight must be positive (successor "
            "probabilities divide by the weight total)");
  transitions_[Key{from, outcome}][to] += weight;
}

const DecisionPoint& WorkflowGraph::point(PointId id) const {
  if (!id.valid() || id.value() >= points_.size()) {
    throw std::out_of_range("WorkflowGraph::point: unknown id");
  }
  return points_[id.value()];
}

std::vector<Successor> WorkflowGraph::successors(PointId from,
                                                 Outcome outcome) const {
  auto it = transitions_.find(Key{from, outcome});
  if (it == transitions_.end()) return {};
  double total = 0.0;
  for (const auto& [to, w] : it->second) total += w;
  std::vector<Successor> out;
  out.reserve(it->second.size());
  for (const auto& [to, w] : it->second) {
    out.push_back(Successor{to, w / total});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Successor& a, const Successor& b) {
                     if (a.probability != b.probability) {
                       return a.probability > b.probability;
                     }
                     return a.point < b.point;
                   });
  return out;
}

std::vector<std::pair<LabelId, double>> WorkflowGraph::anticipated_labels(
    PointId from, Outcome outcome, double min_probability) const {
  std::unordered_map<LabelId, double> reach;
  for (const Successor& s : successors(from, outcome)) {
    if (s.probability < min_probability) continue;
    for (LabelId l : point(s.point).labels) {
      // P(label needed) ≥ per-successor probability; successors are
      // mutually exclusive, so probabilities for the same label add.
      reach[l] += s.probability;
    }
  }
  std::vector<std::pair<LabelId, double>> out(reach.begin(), reach.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace dde::workflow
