#include "workflow/mining.h"

#include "common/contracts.h"

namespace dde::workflow {

void SequenceMiner::record_session(const std::vector<ObservedStep>& session) {
  ++sessions_;
  for (std::size_t i = 0; i + 1 < session.size(); ++i) {
    // Observed sessions are external data: a step naming an unknown point
    // would poison learned_graph() later, so skip it rather than record it.
    bool known = true;
    DDE_CLAMP_OR(session[i].point.valid() &&
                     session[i].point.value() < points_.size(),
                 known = false,
                 "record_session: step names an unknown point; skipped");
    if (!known) continue;
    counts_[Key{session[i].point, session[i].outcome}]
           [session[i + 1].point] += 1.0;
  }
}

double SequenceMiner::transition_count(PointId from, Outcome outcome) const {
  auto it = counts_.find(Key{from, outcome});
  if (it == counts_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [to, c] : it->second) total += c;
  return total;
}

WorkflowGraph SequenceMiner::learned_graph(double smoothing) const {
  WorkflowGraph graph;
  for (const auto& p : points_) {
    const PointId id = graph.add_point(p.name, p.labels);
    DDE_CHECK(id == p.id, "learned_graph: point ids must replay densely");
  }
  // lint: ordered-fold — keyed accumulation into WorkflowGraph's ordered
  // transition map; per-key writes are independent.
  for (const auto& [key, successors] : counts_) {
    if (smoothing > 0.0) {
      for (const auto& p : points_) {
        const auto it = successors.find(p.id);
        const double count = it == successors.end() ? 0.0 : it->second;
        graph.add_transition(key.from, key.outcome, p.id, count + smoothing);
      }
    } else {
      for (const auto& [to, count] : successors) {
        graph.add_transition(key.from, key.outcome, to, count);
      }
    }
  }
  return graph;
}

double SequenceMiner::transition_probability(PointId from, Outcome outcome,
                                             PointId to) const {
  auto it = counts_.find(Key{from, outcome});
  if (it == counts_.end()) return 0.0;
  double total = 0.0;
  double hit = 0.0;
  for (const auto& [t, c] : it->second) {
    total += c;
    if (t == to) hit = c;
  }
  return total == 0.0 ? 0.0 : hit / total;
}

}  // namespace dde::workflow
