// Quickstart: run the paper's post-disaster route-assessment scenario with
// each of the five retrieval schemes and print resolution ratio, bandwidth
// and latency — a one-file tour of the public API.
#include <cstdio>
#include <string>

#include "scenario/route_scenario.h"

int main() {
  using namespace dde;

  std::printf("Decision-driven execution quickstart\n");
  std::printf("Scenario: 8x8 grid, 30 nodes, 3 queries/node, 40%% fast objects\n\n");
  std::printf(
      "%-6s %11s %7s %9s | %8s %8s %6s | %6s %6s %6s %6s %6s %6s %7s\n",
      "scheme", "resolved", "ratio", "MB", "objMB", "pushMB", "lblMB", "reqs",
      "refet", "stale", "push", "ohit", "lhit", "rhops");

  for (athena::Scheme scheme :
       {athena::Scheme::kCmp, athena::Scheme::kSlt, athena::Scheme::kLcf,
        athena::Scheme::kLvf, athena::Scheme::kLvfl}) {
    scenario::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 42;
    const auto result = scenario::run_route_scenario(cfg);
    const auto& m = result.metrics;
    std::printf(
        "%-6s %5llu/%-5llu %7.3f %9.1f | %8.1f %8.1f %6.1f | %6llu %6llu "
        "%6llu %6llu %6llu %6llu %7llu\n",
        std::string(to_string(scheme)).c_str(),
        static_cast<unsigned long long>(m.queries_resolved),
        static_cast<unsigned long long>(m.queries_issued),
        result.resolution_ratio(), result.total_megabytes(),
        static_cast<double>(m.object_bytes) / 1e6,
        static_cast<double>(m.push_bytes) / 1e6,
        static_cast<double>(m.label_bytes) / 1e6,
        static_cast<unsigned long long>(m.object_requests),
        static_cast<unsigned long long>(m.refetches),
        static_cast<unsigned long long>(m.stale_arrivals),
        static_cast<unsigned long long>(m.prefetch_pushes),
        static_cast<unsigned long long>(m.object_cache_hits),
        static_cast<unsigned long long>(m.label_cache_hits),
        static_cast<unsigned long long>(m.object_reply_hops));
  }
  return 0;
}
