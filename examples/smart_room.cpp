// Continuous variables, threshold labels, and model-derived validity
// intervals (Sec. II-B + Sec. VIII).
//
// The paper's smart-room example: the decision to turn the lights on is
// predicated on an optical sensor reading dropping below a threshold — a
// Boolean condition stored in a label called `Dim`. This example models
// the light level (and room occupancy via a CO2 proxy) as mean-reverting
// continuous processes, derives the Boolean labels, lets the system
// *suggest* each label's validity interval from the physics — fast-moving
// variables get short intervals, sluggish ones long — and then drives the
// decision "turn lights on iff (Dim AND Occupied)" through the decision
// library.
#include <cstdio>

#include "decision/expression.h"
#include "decision/planner.h"
#include "world/scalar.h"

using namespace dde;
using world::ScalarDynamics;
using world::ThresholdPredicate;

int main() {
  // Site 0: light level (lux/10). Bright mean, moderate noise, slow drift.
  // Site 1: CO2 above baseline (ppm/100) — occupancy proxy, fast-moving.
  world::ScalarProcess room(
      {
          ScalarDynamics{60.0, 0.02, 1.2, 58.0},  // light
          ScalarDynamics{4.0, 0.15, 1.8, 6.5},    // co2 (occupied now)
      },
      Rng(99));

  const ThresholdPredicate dim{40.0, /*above=*/false};     // Dim = light < 40
  const ThresholdPredicate occupied{5.0, /*above=*/true};  // CO2 >= 5

  std::printf("Smart room: lights on iff (Dim AND Occupied)\n\n");
  std::printf("%-8s %10s %6s %10s %9s | %s\n", "t", "light", "Dim", "co2",
              "Occup", "suggested validity (90% conf)");

  for (int t = 0; t <= 3000; t += 600) {
    const SimTime now = SimTime::seconds(t);
    const double light = room.value_at(0, now);
    const double co2 = room.value_at(1, now);
    const SimTime dim_validity = world::estimate_validity(
        room, 0, now, dim, 0.9, 300, Rng(7), SimTime::seconds(1800));
    const SimTime occ_validity = world::estimate_validity(
        room, 1, now, occupied, 0.9, 300, Rng(7), SimTime::seconds(1800));
    std::printf("%-8d %10.1f %6s %10.1f %9s | Dim: %5.0fs  Occupied: %5.0fs\n",
                t, light, dim.evaluate(light) ? "yes" : "no", co2,
                occupied.evaluate(co2) ? "yes" : "no",
                dim_validity.to_seconds(), occ_validity.to_seconds());
  }

  // --- drive the decision through the decision library --------------------
  const LabelId kDim{0};
  const LabelId kOccupied{1};
  decision::DnfExpr lights_on;
  lights_on.add_disjunct(decision::Conjunction{
      {decision::Term{kDim, false}, decision::Term{kOccupied, false}}});

  decision::MetaTable meta;
  const SimTime now = SimTime::seconds(3000);
  // Metadata straight from the physics: validity from the model, cost from
  // the sensor (the occupancy label needs the pricier CO2 probe).
  meta.set(kDim, decision::LabelMeta{
                     1.0, SimTime::millis(5), 0.3,
                     world::estimate_validity(room, 0, now, dim, 0.9, 300,
                                              Rng(7))});
  meta.set(kOccupied, decision::LabelMeta{
                          4.0, SimTime::millis(5), 0.6,
                          world::estimate_validity(room, 1, now, occupied, 0.9,
                                                   300, Rng(7))});

  std::printf("\nevaluating at t=3000s with the short-circuit planner:\n");
  decision::Assignment a;
  int fetched = 0;
  while (auto next = decision::next_label(lights_on, a, now, meta.fn(),
                                          decision::OrderPolicy::kShortCircuit)) {
    const std::size_t site = next->value();
    const double value = room.value_at(site, now);
    const bool truth = site == 0 ? dim.evaluate(value) : occupied.evaluate(value);
    decision::LabelValue v;
    v.label = *next;
    v.value = to_tristate(truth);
    v.evaluated_at = now;
    v.validity = meta.get(*next).validity;
    v.annotator = AnnotatorId{0};
    a.set(v);
    ++fetched;
    std::printf("  sampled %s -> %s (fresh for %.0fs)\n",
                site == 0 ? "light" : "co2", truth ? "true" : "false",
                v.validity.to_seconds());
  }
  const bool on = lights_on.evaluate(a, now) == Tristate::kTrue;
  std::printf("decision: lights %s (after %d sensor reads)\n", on ? "ON" : "off",
              fetched);
  std::printf(
      "\nthe cheap likely-false Dim label is probed first; when the room is\n"
      "bright, the CO2 probe is never consulted at all.\n");
  return 0;
}
