// Information-maximizing delivery over a bottleneck (Sec. V-B/V-C), plus
// hierarchical-name approximate substitution (Sec. V-A).
//
// A disaster-area uplink can move only a fraction of the sensor data
// gathered each reporting period. Items are named hierarchically, so the
// network can (a) estimate redundancy from shared name prefixes and triage
// for maximum delivered information, and (b) substitute a near-equivalent
// object (longest shared prefix) when an exact name is unavailable.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "naming/prefix_index.h"
#include "pubsub/utility.h"

using namespace dde;
using pubsub::Item;

int main() {
  Rng rng(99);

  // --- the reporting period's capture: 5 sites, clustered coverage --------
  std::vector<Item> captured;
  const char* sites[] = {"bridge", "hospital", "school", "market", "depot"};
  for (int site = 0; site < 5; ++site) {
    const int copies = 2 + static_cast<int>(rng.below(5));  // redundant views
    for (int k = 0; k < copies; ++k) {
      Item it;
      it.name = naming::Name::parse("/city/" + std::string(sites[site]) +
                                    "/cam" + std::to_string(k));
      it.bytes = 80 + rng.below(240);
      it.base_utility = rng.uniform(0.5, 2.0);
      captured.push_back(std::move(it));
    }
  }
  // One item is command traffic: critical, exempt from triage (Sec. V-C).
  Item order;
  order.name = naming::Name::parse("/city/hq/evac-order");
  order.bytes = 40;
  order.base_utility = 0.3;
  order.critical = true;
  captured.push_back(order);

  std::uint64_t total = 0;
  for (const auto& it : captured) total += it.bytes;
  const std::uint64_t budget = total / 4;  // the uplink fits 25%

  std::printf("captured %zu items, %llu KB total; uplink budget %llu KB\n\n",
              captured.size(), static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(budget));

  const auto infomax = pubsub::infomax_triage(captured, budget);
  const auto fifo = pubsub::fifo_triage(captured, budget);
  const auto prio = pubsub::priority_triage(captured, budget);

  std::printf("%-22s %10s %10s\n", "policy", "delivered", "utility");
  std::printf("%-22s %9zu %10.2f\n", "infomax (name-aware)",
              infomax.order.size(), infomax.utility);
  std::printf("%-22s %9zu %10.2f\n", "fifo", fifo.order.size(), fifo.utility);
  std::printf("%-22s %9zu %10.2f\n", "static priority", prio.order.size(),
              prio.utility);

  std::printf("\ninfomax sent:\n");
  for (std::size_t i : infomax.order) {
    std::printf("  %-28s %4llu KB%s\n", captured[i].name.to_string().c_str(),
                static_cast<unsigned long long>(captured[i].bytes),
                captured[i].critical ? "   [critical]" : "");
  }

  // --- approximate substitution over the same name space ------------------
  std::printf("\napproximate matching (Sec. V-A):\n");
  naming::PrefixIndex<std::size_t> index;
  for (std::size_t i : infomax.order) index.insert(captured[i].name, i);

  const auto want = naming::Name::parse("/city/bridge/cam9");
  std::printf("  request: %s (not delivered)\n", want.to_string().c_str());
  if (const auto near = index.nearest(want, /*min_shared=*/2)) {
    std::printf("  substitute: %s (shared prefix %zu, similarity %.2f)\n",
                near->first.to_string().c_str(),
                want.shared_prefix_length(near->first),
                want.similarity(near->first));
  } else {
    std::printf("  no acceptable substitute within 2 shared components\n");
  }
  const auto strict = naming::Name::parse("/county/reservoir/cam1");
  std::printf("  request: %s\n", strict.to_string().c_str());
  if (!index.nearest(strict, /*min_shared=*/1)) {
    std::printf("  correctly refused: nothing shares even one component\n");
  }
  return 0;
}
