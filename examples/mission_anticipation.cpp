// Workflow mining and anticipatory retrieval (Sec. VIII), end to end.
//
// A rescue team follows doctrine: recon → (approach | detour) → rescue →
// (medevac | report). The system watches 500 past missions to mine the
// workflow, then supports a live mission: while the operator deliberates
// on the current decision, it prefetches the labels the *likely next*
// decision will need, so the next decision starts warm.
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "workflow/mining.h"
#include "workflow/workflow.h"

using namespace dde;
using namespace dde::workflow;

namespace {

std::vector<LabelId> labels(std::initializer_list<std::uint64_t> ids) {
  std::vector<LabelId> out;
  for (auto i : ids) out.push_back(LabelId{i});
  return out;
}

}  // namespace

int main() {
  // --- the true doctrine (unknown to the system) ---------------------------
  WorkflowGraph truth;
  const PointId recon = truth.add_point("recon", labels({0, 1, 2}));
  const PointId approach = truth.add_point("approach", labels({3, 4}));
  const PointId detour = truth.add_point("detour", labels({5, 6}));
  const PointId rescue = truth.add_point("rescue", labels({7, 8}));
  const PointId medevac = truth.add_point("medevac", labels({9}));
  const PointId report = truth.add_point("report", labels({10}));
  truth.add_transition(recon, 0, approach, 0.7);
  truth.add_transition(recon, 0, detour, 0.3);
  truth.add_transition(approach, 0, rescue, 1.0);
  truth.add_transition(detour, 0, rescue, 0.85);
  truth.add_transition(detour, 0, report, 0.15);
  truth.add_transition(rescue, 0, medevac, 0.6);
  truth.add_transition(rescue, 0, report, 0.4);

  Rng rng(4711);
  auto sample_session = [&](std::vector<ObservedStep>& out) {
    PointId cur = recon;
    for (int guard = 0; guard < 16; ++guard) {
      out.push_back({cur, 0});
      const auto succ = truth.successors(cur, 0);
      if (succ.empty()) break;
      double u = rng.uniform();
      PointId next = succ.back().point;
      for (const auto& s : succ) {
        if (u < s.probability) {
          next = s.point;
          break;
        }
        u -= s.probability;
      }
      cur = next;
    }
  };

  // --- 1. mine the doctrine from history ------------------------------------
  std::vector<DecisionPoint> points;
  for (std::size_t i = 0; i < truth.point_count(); ++i) {
    points.push_back(truth.point(PointId{i}));
  }
  SequenceMiner miner(points);
  for (int s = 0; s < 500; ++s) {
    std::vector<ObservedStep> session;
    sample_session(session);
    miner.record_session(session);
  }
  const WorkflowGraph learned = miner.learned_graph();
  std::printf("mined from %zu sessions:\n", miner.sessions());
  for (std::size_t i = 0; i < learned.point_count(); ++i) {
    const auto succ = learned.successors(PointId{i}, 0);
    if (succ.empty()) continue;
    std::printf("  after %-9s ->", learned.point(PointId{i}).name.c_str());
    for (const auto& s : succ) {
      std::printf(" %s(%.2f)", learned.point(s.point).name.c_str(),
                  s.probability);
    }
    std::printf("\n");
  }

  // --- 2. a live mission with anticipation ----------------------------------
  std::printf("\nlive mission (fetch = 4s, think = 10s):\n");
  std::vector<ObservedStep> mission;
  sample_session(mission);
  std::unordered_set<std::uint64_t> prefetched;
  double total_wait = 0;
  for (std::size_t i = 0; i < mission.size(); ++i) {
    const auto& point = learned.point(mission[i].point);
    int missing = 0;
    for (LabelId l : point.labels) {
      if (!prefetched.contains(l.value())) ++missing;
    }
    total_wait += missing * 4.0;
    std::printf("  %-9s needs %zu labels, %d fetched cold (wait %2.0fs)",
                point.name.c_str(), point.labels.size(), missing,
                missing * 4.0);
    // During think time, prefetch for the likely next decisions.
    const auto anticipated =
        learned.anticipated_labels(mission[i].point, mission[i].outcome, 0.25);
    int budget = 2;  // think_time / fetch_time
    std::printf("  | prefetching:");
    bool any = false;
    for (const auto& [label, prob] : anticipated) {
      if (budget-- <= 0) break;
      if (prefetched.insert(label.value()).second) {
        std::printf(" L%llu(p=%.2f)",
                    static_cast<unsigned long long>(label.value()), prob);
        any = true;
      }
    }
    if (!any) std::printf(" -");
    std::printf("\n");
  }
  std::printf("total cold-fetch wait: %.0fs (naive would be %.0fs)\n",
              total_wait, [&] {
                double naive = 0;
                for (const auto& step : mission) {
                  naive += 4.0 * learned.point(step.point).labels.size();
                }
                return naive;
              }());
  return 0;
}
