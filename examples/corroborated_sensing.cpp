// Corroborating noisy evidence (Sec. IV-B) — the fusion layer standalone,
// then inside a running Athena deployment.
//
// Scene: after the earthquake, the command post must decide whether the
// river bridge is passable. Three battered cameras overlook it, each
// reporting the truth only 75% of the time. One picture is not enough to
// bet lives on; the system plans how much corroboration a 95%-confidence
// decision needs, gathers it, and learns over time which cameras to avoid.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fusion/belief.h"
#include "fusion/corroboration.h"
#include "fusion/reliability.h"

using namespace dde;
using namespace dde::fusion;

int main() {
  Rng rng(20260706);

  // --- 1. plan the corroboration ------------------------------------------
  std::printf("1. Planning: bridge-passable at 95%% confidence\n");
  const std::vector<NoisySource> cameras{
      {SourceId{0}, 0.75, 2.0, 3},   // near camera, cheap, shaky
      {SourceId{1}, 0.85, 5.0, 2},   // far camera, better optics
      {SourceId{2}, 0.75, 2.5, 3},
  };
  const auto plan = exact_corroboration(cameras, 0.95);
  std::printf("   required log-odds: %.2f\n", required_log_odds(0.95));
  for (std::size_t i = 0; i < cameras.size(); ++i) {
    if (plan.counts[i] > 0) {
      std::printf("   camera %zu: %d observation(s)  (reliability %.2f)\n", i,
                  plan.counts[i], cameras[i].reliability);
    }
  }
  std::printf("   plan cost %.1f, planned log-odds %.2f (achievable: %s)\n\n",
              plan.cost, plan.log_odds, plan.achievable ? "yes" : "no");

  // --- 2. retrieve adaptively against a ground truth ------------------------
  // The plan is the a-priori budget (it assumes readings agree); the live
  // system retrieves adaptively: keep observing until the belief clears the
  // bar, because disagreeing readings cancel and demand extra evidence.
  std::printf("2. Adaptive retrieval, 10 missions (truth: bridge IS passable)\n");
  int correct = 0;
  int wrong = 0;
  int undecided = 0;
  int total_obs = 0;
  for (int round = 0; round < 10; ++round) {
    LabelBelief belief;
    std::printf("   mission %d:", round);
    int obs = 0;
    // Cycle through cameras by information density until decided (new
    // captures become available each validity window) — cap at 12.
    while (belief.decided(0.95) == Tristate::kUnknown && obs < 12) {
      const auto& cam = cameras[obs % cameras.size()];
      const bool reading = rng.chance(cam.reliability);
      belief.observe(reading, cam.reliability);
      std::printf(" %s", reading ? "open" : "BLOCKED");
      ++obs;
    }
    total_obs += obs;
    const Tristate verdict = belief.decided(0.95);
    std::printf("  -> %s after %d obs (P(open)=%.3f)\n",
                verdict == Tristate::kUnknown ? "UNDECIDED"
                : verdict == Tristate::kTrue  ? "open"
                                              : "BLOCKED(!)",
                obs, belief.p_true());
    if (verdict == Tristate::kTrue) ++correct;
    if (verdict == Tristate::kFalse) ++wrong;
    if (verdict == Tristate::kUnknown) ++undecided;
  }
  std::printf(
      "   %d correct / %d wrong / %d undecided; %.1f observations per\n"
      "   decision (the plan's static estimate was %d)\n\n",
      correct, wrong, undecided, total_obs / 10.0,
      plan.counts[0] + plan.counts[1] + plan.counts[2]);

  // --- 3. learn which cameras to trust -------------------------------------
  std::printf("3. Reliability learning from annotator feedback\n");
  ReliabilityProfile profile;
  const double truth_rel[3] = {0.75, 0.85, 0.35};  // camera 2 got damaged
  for (int i = 0; i < 400; ++i) {
    for (std::uint64_t c = 0; c < 3; ++c) {
      profile.record(SourceId{c}, rng.chance(truth_rel[c]));
    }
  }
  for (std::uint64_t c = 0; c < 3; ++c) {
    std::printf("   camera %llu: estimated reliability %.3f (true %.2f)\n",
                static_cast<unsigned long long>(c),
                profile.reliability(SourceId{c}), truth_rel[c]);
  }
  const auto avoid = profile.unreliable_sources(0.5);
  for (SourceId s : avoid) {
    std::printf("   -> camera %llu flagged unreliable; future source\n"
                "      selection will route around it\n",
                static_cast<unsigned long long>(s.value()));
  }
  std::printf(
      "\nIn the full stack this loop is automatic: set\n"
      "AthenaConfig::corroboration_confidence and the node rotates across\n"
      "covering sensors until each label's Bayesian belief clears the bar\n"
      "(see bench/noise_system for the accuracy/bandwidth trade).\n");
  return 0;
}
