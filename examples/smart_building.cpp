// Event-triggered, deadline-constrained decision making (Sec. IV) using the
// scheduling-theory layer directly — no network, one shared channel.
//
// A building-security controller runs on a gateway with a single uplink to
// its sensors (the resource bottleneck). Two kinds of decisions arise:
//   * periodic "health check" decisions over slow sensors, and
//   * an event-triggered "intruder assessment" decision whenever the motion
//     sensor fires — with a tight deadline and short validity intervals
//     (cameras' views of a moving subject go stale quickly).
// The example schedules each round of decisions with hierarchical min-slack
// banding + LVF and contrasts it with naive FIFO handling.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "des/periodic.h"
#include "des/simulator.h"
#include "sched/lvf.h"

using namespace dde;

namespace {

/// Evidence needed for an intruder assessment: entrance camera, hallway
/// camera, and a badge-reader log. Camera data is volatile.
sched::DecisionTask intruder_task(std::uint64_t id, SimTime now) {
  return sched::DecisionTask{
      QueryId{id},
      now,
      SimTime::seconds(12),
      {
          {ObjectId{id * 10 + 0}, SimTime::seconds(4), SimTime::seconds(8)},
          {ObjectId{id * 10 + 1}, SimTime::seconds(3), SimTime::seconds(6)},
          {ObjectId{id * 10 + 2}, SimTime::seconds(1), SimTime::seconds(60)},
      }};
}

/// Periodic health check: thermostat + air quality, long validity.
sched::DecisionTask health_task(std::uint64_t id, SimTime now) {
  return sched::DecisionTask{
      QueryId{id},
      now,
      SimTime::seconds(40),
      {
          {ObjectId{id * 10 + 0}, SimTime::seconds(2), SimTime::seconds(300)},
          {ObjectId{id * 10 + 1}, SimTime::seconds(2), SimTime::seconds(300)},
      }};
}

void report(const char* name, const sched::ChannelSchedule& s) {
  int met = 0;
  for (const auto& t : s.tasks) met += t.feasible() ? 1 : 0;
  std::printf("  %-28s %d/%zu decisions on time, channel busy %.0f s\n", name,
              met, s.tasks.size(), s.total_cost().to_seconds());
  for (const auto& t : s.tasks) {
    std::printf("    query %-8llu decision at t=%5.1fs  deadline %s  "
                "freshness %s\n",
                static_cast<unsigned long long>(t.query.value()),
                t.decision_time.to_seconds(), t.deadline_met ? "met " : "MISS",
                t.all_fresh ? "ok" : "STALE");
  }
}

}  // namespace

int main() {
  std::printf("Smart-building gateway: decision-driven retrieval scheduling\n");
  std::printf("=============================================================\n\n");

  // --- one contention round: an intruder alert lands amid health checks ---
  std::vector<sched::DecisionTask> round;
  round.push_back(health_task(1, SimTime::zero()));
  round.push_back(health_task(2, SimTime::zero()));
  round.push_back(intruder_task(3, SimTime::zero()));
  round.push_back(health_task(4, SimTime::zero()));

  std::printf("round of 4 decisions (intruder assessment is query 3):\n\n");

  report("FIFO + declared order:",
         sched::schedule_bands(round, sched::TaskOrder::kDeclared,
                               sched::ObjectOrder::kDeclared));
  std::printf("\n");
  report("min-slack bands + LVF:",
         sched::schedule_bands(round, sched::TaskOrder::kMinSlackBand,
                               sched::ObjectOrder::kLvf));

  // --- a longer event-driven simulation ----------------------------------
  // Each motion event triggers a burst: the intruder assessment plus the
  // routine checks that were due, all contending for the uplink at once.
  std::printf("\n2-hour simulation, motion events ~ every 9 min:\n\n");
  des::Simulator sim;
  Rng rng(2026);
  int fifo_ok = 0;
  int banded_ok = 0;
  int total = 0;
  std::uint64_t next_id = 100;

  std::function<void()> motion = [&] {
    // The burst of decisions raised by this event.
    std::vector<sched::DecisionTask> burst;
    // Routine checks were already queued when the alarm fires, so FIFO
    // order places them ahead of the intruder assessment.
    const std::uint64_t queued = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < queued; ++i) {
      burst.push_back(health_task(next_id++, sim.now()));
    }
    burst.push_back(intruder_task(next_id++, sim.now()));
    total += static_cast<int>(burst.size());
    for (const auto& t :
         sched::schedule_bands(burst, sched::TaskOrder::kDeclared,
                               sched::ObjectOrder::kDeclared)
             .tasks) {
      fifo_ok += t.feasible() ? 1 : 0;
    }
    for (const auto& t :
         sched::schedule_bands(burst, sched::TaskOrder::kMinSlackBand,
                               sched::ObjectOrder::kLvf)
             .tasks) {
      banded_ok += t.feasible() ? 1 : 0;
    }
    sim.schedule_after(SimTime::seconds(rng.exponential(540)), motion);
  };
  sim.schedule_after(SimTime::seconds(rng.exponential(540)), motion);
  sim.run_until(SimTime::seconds(7200));

  std::printf("  decisions on time: FIFO %d/%d, min-slack+LVF %d/%d\n",
              fifo_ok, total, banded_ok, total);
  std::printf(
      "\nthe volatile intruder evidence must be fetched last (LVF) and its\n"
      "query scheduled first (smallest validity/deadline slack) — exactly\n"
      "what the decision-driven policy does.\n");
  return 0;
}
