// Post-disaster route assessment — the paper's running example, built
// piece by piece against the public API (rather than through the scenario
// harness), with protocol logging enabled.
//
// An emergency team at the depot must move a patient to the medical camp.
// Two candidate routes exist; roadside cameras can show whether each
// segment is passable. The decision query
//     (viable(A) ∧ viable(B)) ∨ (viable(C) ∧ viable(D))
// is issued at the depot node; Athena retrieves just enough evidence to
// commit to a route.
#include <cstdio>
#include <memory>
#include <vector>

#include "athena/directory.h"
#include "athena/messages.h"
#include "athena/node.h"
#include "common/log.h"
#include "des/simulator.h"
#include "net/network.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/sensor_field.h"

using namespace dde;

int main() {
  log_threshold() = LogLevel::kOff;  // set kInfo to watch the protocol

  // --- the physical world: a 3x3 block downtown -------------------------
  world::GridMap map(3, 3);
  // Segment ids for the story: route 1 = {0, 1}, route 2 = {3, 4}.
  std::vector<world::SegmentDynamics> dynamics(
      map.segment_count(), world::SegmentDynamics{1.0, SimTime::seconds(1e7)});
  dynamics[1].p_viable = 0.0;  // a collapsed overpass blocks segment 1
  world::ViabilityProcess truth(std::move(dynamics), Rng(7));

  // --- roadside cameras ---------------------------------------------------
  auto camera = [](std::uint64_t id, const char* name,
                   std::vector<SegmentId> covers,
                   std::uint64_t bytes) {
    world::SensorInfo s;
    s.id = SourceId{id};
    s.name = naming::Name::parse(name);
    s.covers = std::move(covers);
    s.object_bytes = bytes;
    s.validity = SimTime::seconds(120);
    return s;
  };
  std::vector<world::SensorInfo> cameras{
      camera(0, "/city/north/cam0", {SegmentId{0}, SegmentId{1}}, 400 * 1024),
      camera(1, "/city/south/cam1", {SegmentId{3}, SegmentId{4}}, 250 * 1024),
      camera(2, "/city/south/cam2", {SegmentId{4}}, 600 * 1024),
  };
  world::SensorField field(map, truth, std::move(cameras));

  // --- the network: depot — relay — camera hosts -------------------------
  net::Topology topo;
  const NodeId depot = topo.add_node();   // issues the decision query
  const NodeId relay = topo.add_node();
  const NodeId north = topo.add_node();   // hosts cam0
  const NodeId south = topo.add_node();   // hosts cam1 and cam2
  topo.add_link(depot, relay, 1e6, SimTime::millis(2));
  topo.add_link(relay, north, 1e6, SimTime::millis(2));
  topo.add_link(relay, south, 1e6, SimTime::millis(2));
  topo.compute_routes();

  des::Simulator sim;
  net::Network network(sim, topo);

  athena::Directory directory(
      topo, field, {north, south, south},
      {{LabelId{0}, 0.8}, {LabelId{1}, 0.8}, {LabelId{3}, 0.8},
       {LabelId{4}, 0.8}});

  athena::AthenaMetrics metrics;
  const athena::AthenaConfig config = athena::config_for(athena::Scheme::kLvfl);
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes;
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    nodes.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, directory, field, config, metrics));
  }

  // --- the decision query -------------------------------------------------
  decision::DnfExpr query;
  query.add_disjunct(decision::Conjunction{
      {decision::Term{LabelId{0}, false}, decision::Term{LabelId{1}, false}}});
  query.add_disjunct(decision::Conjunction{
      {decision::Term{LabelId{3}, false}, decision::Term{LabelId{4}, false}}});

  // Trace the protocol hop by hop (the Fig. 1 walkthrough).
  const char* node_names[] = {"depot", "relay", "north", "south"};
  int edge = 0;
  network.set_tracer([&](const net::TraceEvent& ev) {
    if (ev.kind != net::TraceEvent::Kind::kDeliver) return;
    const char* what = "?";
    if (std::any_cast<athena::QueryAnnounce>(ev.payload)) what = "announce";
    else if (std::any_cast<athena::ObjectRequest>(ev.payload)) what = "request";
    else if (const auto* o = std::any_cast<athena::ObjectReply>(ev.payload)) {
      what = o->prefetch_push ? "object (prefetch push)" : "object";
    } else if (std::any_cast<athena::LabelShare>(ev.payload)) what = "labels";
    else if (std::any_cast<athena::LabelReply>(ev.payload)) what = "labels";
    std::printf("  edge %2d  t=%7.3fs  %-5s -> %-5s  %-22s %7llu B\n", ++edge,
                ev.at.to_seconds(), node_names[ev.from.value()],
                node_names[ev.to.value()], what,
                static_cast<unsigned long long>(ev.bytes));
  });

  std::printf("Decision query issued at the depot:\n");
  std::printf("  (viable(s0) AND viable(s1)) OR (viable(s3) AND viable(s4))\n");
  std::printf("  ground truth: s1 is blocked; the southern route is open.\n\n");

  std::printf("message flow (cf. paper Fig. 1):\n");
  nodes[depot.value()]->query_init(std::move(query), SimTime::seconds(60));
  sim.run_until(SimTime::seconds(120));
  std::printf("\n");

  // --- what happened -------------------------------------------------------
  const auto& record = nodes[depot.value()]->records().back();
  std::printf("outcome: %s\n", record.success ? "decision reached" : "FAILED");
  if (record.chosen_action) {
    std::printf("chosen course of action: route %zu (%s)\n",
                *record.chosen_action,
                *record.chosen_action == 0 ? "north" : "south");
  } else {
    std::printf("no viable route found\n");
  }
  std::printf("decision latency: %.2f s\n",
              (record.finished_at - record.issued_at).to_seconds());
  std::printf("object requests sent: %llu\n",
              static_cast<unsigned long long>(record.requests_sent));
  std::printf("network bytes moved: %.2f MB (objects %.2f, labels %.2f)\n",
              static_cast<double>(metrics.total_bytes()) / 1e6,
              static_cast<double>(metrics.object_bytes) / 1e6,
              static_cast<double>(metrics.label_bytes) / 1e6);
  std::printf(
      "\nnote: the OR-level short-circuit rule tried the southern route\n"
      "first — cam1 covers both of its segments, so a single cheap object\n"
      "decides the whole query; the northern camera is never contacted.\n"
      "The evaluated labels were then shared back toward the source\n"
      "(edges 6-7), ready to answer future queries at the relay.\n");
  return record.success ? 0 : 1;
}
